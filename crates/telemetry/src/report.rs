//! Render an exported telemetry JSONL file back into human-readable tables.
//!
//! This is the read side of the subsystem: it depends only on the JSONL
//! schema, not on the live collectors, so it is compiled even when the
//! `enabled` feature is off and can digest files produced by any build.

use qvisor_sim::json::Value;

/// One exported counter or gauge line.
#[derive(Clone, Debug)]
pub struct MetricLine {
    /// Metric name.
    pub name: String,
    /// Sorted `(label, value)` pairs.
    pub labels: Vec<(String, String)>,
    /// Exported value (counters are non-negative; gauges may not be).
    pub value: i128,
}

/// One exported histogram line (bucket detail elided).
#[derive(Clone, Debug)]
pub struct HistLine {
    /// Metric name.
    pub name: String,
    /// Sorted `(label, value)` pairs.
    pub labels: Vec<(String, String)>,
    /// Sample count.
    pub count: u64,
    /// Exact minimum, if any samples were recorded.
    pub min: Option<u64>,
    /// Exact maximum.
    pub max: Option<u64>,
    /// Exact mean.
    pub mean: Option<f64>,
    /// Median estimate.
    pub p50: Option<u64>,
    /// 90th-percentile estimate.
    pub p90: Option<u64>,
    /// 99th-percentile estimate.
    pub p99: Option<u64>,
    /// Occupied `(lo, hi, count)` buckets in ascending value order, when
    /// the export carried them (the Prometheus renderer needs the detail).
    pub buckets: Vec<(u64, u64, u64)>,
}

/// One exported wall-clock profile line.
#[derive(Clone, Debug)]
pub struct ProfileLine {
    /// Profiled site name.
    pub name: String,
    /// Number of recorded scopes.
    pub count: u64,
    /// Total wall-clock nanoseconds.
    pub total_ns: u64,
    /// Shortest scope.
    pub min_ns: u64,
    /// Longest scope.
    pub max_ns: u64,
    /// Mean nanoseconds per scope.
    pub mean_ns: u64,
}

/// A parsed telemetry export.
#[derive(Clone, Debug, Default)]
pub struct Export {
    /// Schema version from the `meta` line, if present.
    pub schema: Option<u64>,
    /// Journal events evicted before export.
    pub journal_evicted: u64,
    /// Counter lines, in file order.
    pub counters: Vec<MetricLine>,
    /// Gauge lines, in file order.
    pub gauges: Vec<MetricLine>,
    /// Histogram lines, in file order.
    pub histograms: Vec<HistLine>,
    /// Wall-clock profile lines, in file order.
    pub profiles: Vec<ProfileLine>,
    /// Journal event lines, oldest first.
    pub events: Vec<Value>,
}

fn parse_labels(v: Option<&Value>) -> Vec<(String, String)> {
    let mut labels: Vec<(String, String)> = v
        .and_then(Value::as_object)
        .map(|pairs| {
            pairs
                .iter()
                .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
                .collect()
        })
        .unwrap_or_default();
    labels.sort();
    labels
}

/// Parse a JSONL export. Unknown line types are ignored (forward
/// compatibility); malformed JSON is an error naming the line number.
pub fn parse(jsonl: &str) -> Result<Export, String> {
    if jsonl.lines().all(|l| l.trim().is_empty()) {
        return Err("empty export (no JSONL lines)".into());
    }
    let mut export = Export::default();
    for (lineno, line) in jsonl.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = Value::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = value.get("type").and_then(Value::as_str).unwrap_or("");
        let name = || {
            value
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string()
        };
        match kind {
            "meta" => {
                export.schema = value.get("schema").and_then(Value::as_u64);
                export.journal_evicted = value
                    .get("journal_evicted")
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
            }
            "counter" | "gauge" => {
                let line = MetricLine {
                    name: name(),
                    labels: parse_labels(value.get("labels")),
                    value: value.get("value").and_then(Value::as_i64).unwrap_or(0) as i128,
                };
                if kind == "counter" {
                    export.counters.push(line);
                } else {
                    export.gauges.push(line);
                }
            }
            "histogram" => export.histograms.push(HistLine {
                name: name(),
                labels: parse_labels(value.get("labels")),
                count: value.get("count").and_then(Value::as_u64).unwrap_or(0),
                min: value.get("min").and_then(Value::as_u64),
                max: value.get("max").and_then(Value::as_u64),
                mean: value.get("mean").and_then(Value::as_f64),
                p50: value.get("p50").and_then(Value::as_u64),
                p90: value.get("p90").and_then(Value::as_u64),
                p99: value.get("p99").and_then(Value::as_u64),
                buckets: value
                    .get("buckets")
                    .and_then(Value::as_array)
                    .map(|items| {
                        items
                            .iter()
                            .filter_map(|b| {
                                let b = b.as_array()?;
                                Some((
                                    b.first()?.as_u64()?,
                                    b.get(1)?.as_u64()?,
                                    b.get(2)?.as_u64()?,
                                ))
                            })
                            .collect()
                    })
                    .unwrap_or_default(),
            }),
            "profile" => {
                let u = |key: &str| value.get(key).and_then(Value::as_u64).unwrap_or(0);
                export.profiles.push(ProfileLine {
                    name: name(),
                    count: u("count"),
                    total_ns: u("total_ns"),
                    min_ns: u("min_ns"),
                    max_ns: u("max_ns"),
                    mean_ns: u("mean_ns"),
                });
            }
            "event" => export.events.push(value),
            _ => {}
        }
    }
    Ok(export)
}

fn label_suffix(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{{{}}}", inner.join(","))
}

/// Left-align the first column, right-align the rest.
pub(crate) fn render_table(out: &mut String, headers: &[String], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let push_row = |out: &mut String, row: &[String]| {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                out.push_str(&format!("{cell:<width$}", width = widths[i]));
            } else {
                out.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    push_row(out, headers);
    for row in rows {
        push_row(out, row);
    }
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |v| v.to_string())
}

/// Pivot metric lines on one label key: one row per label value, one column
/// per metric name, summing across any remaining labels. Returns `None` if
/// no metric carries the label.
fn pivot(metrics: &[&MetricLine], key: &str) -> Option<(Vec<String>, Vec<Vec<String>>)> {
    use std::collections::BTreeMap;
    let mut names: Vec<String> = Vec::new();
    let mut cells: BTreeMap<String, BTreeMap<String, i128>> = BTreeMap::new();
    for m in metrics {
        let Some((_, label_value)) = m.labels.iter().find(|(k, _)| k == key) else {
            continue;
        };
        if !names.contains(&m.name) {
            names.push(m.name.clone());
        }
        *cells
            .entry(label_value.clone())
            .or_default()
            .entry(m.name.clone())
            .or_default() += m.value;
    }
    if cells.is_empty() {
        return None;
    }
    names.sort();
    let mut headers = vec![key.to_string()];
    headers.extend(names.iter().cloned());
    let rows = cells
        .iter()
        .map(|(label_value, by_name)| {
            let mut row = vec![label_value.clone()];
            row.extend(names.iter().map(|n| {
                by_name
                    .get(n)
                    .map_or_else(|| "-".to_string(), |v| v.to_string())
            }));
            row
        })
        .collect();
    Some((headers, rows))
}

/// Render a parsed export as human-readable text: per-tenant and per-queue
/// pivots first, then the full metric listing, histogram percentiles, and a
/// tail of journal events.
pub fn render_export(export: &Export) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "telemetry report (schema {})\n",
        export
            .schema
            .map_or_else(|| "?".to_string(), |s| s.to_string())
    ));

    let all_metrics: Vec<&MetricLine> =
        export.counters.iter().chain(export.gauges.iter()).collect();
    for key in ["tenant", "queue"] {
        if let Some((headers, rows)) = pivot(&all_metrics, key) {
            out.push_str(&format!("\nper-{key}:\n"));
            render_table(&mut out, &headers, &rows);
        }
    }

    if !export.counters.is_empty() || !export.gauges.is_empty() {
        out.push_str("\ncounters & gauges:\n");
        let headers = vec!["metric".to_string(), "value".to_string()];
        let rows: Vec<Vec<String>> = all_metrics
            .iter()
            .map(|m| {
                vec![
                    format!("{}{}", m.name, label_suffix(&m.labels)),
                    m.value.to_string(),
                ]
            })
            .collect();
        render_table(&mut out, &headers, &rows);
    }

    if !export.histograms.is_empty() {
        out.push_str("\nhistograms:\n");
        let headers: Vec<String> = ["metric", "count", "min", "p50", "p90", "p99", "max", "mean"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rows: Vec<Vec<String>> = export
            .histograms
            .iter()
            .map(|h| {
                vec![
                    format!("{}{}", h.name, label_suffix(&h.labels)),
                    h.count.to_string(),
                    opt_u64(h.min),
                    opt_u64(h.p50),
                    opt_u64(h.p90),
                    opt_u64(h.p99),
                    opt_u64(h.max),
                    h.mean
                        .map_or_else(|| "-".to_string(), |m| format!("{m:.1}")),
                ]
            })
            .collect();
        render_table(&mut out, &headers, &rows);
    }

    if !export.profiles.is_empty() {
        out.push_str("\nself-profile (wall clock):\n");
        let headers: Vec<String> = ["site", "count", "total_ns", "mean_ns", "min_ns", "max_ns"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rows: Vec<Vec<String>> = export
            .profiles
            .iter()
            .map(|p| {
                vec![
                    p.name.clone(),
                    p.count.to_string(),
                    p.total_ns.to_string(),
                    p.mean_ns.to_string(),
                    p.min_ns.to_string(),
                    p.max_ns.to_string(),
                ]
            })
            .collect();
        render_table(&mut out, &headers, &rows);
    }

    if !export.events.is_empty() || export.journal_evicted > 0 {
        out.push_str(&format!(
            "\njournal: {} event(s) retained, {} evicted\n",
            export.events.len(),
            export.journal_evicted
        ));
        if export.journal_evicted > 0 {
            out.push_str(
                "  warning: journal overflowed — oldest events were dropped \
                 (telemetry_journal_dropped counts the loss)\n",
            );
        }
        const TAIL: usize = 10;
        let skip = export.events.len().saturating_sub(TAIL);
        if skip > 0 {
            out.push_str(&format!("  ... {skip} earlier event(s)\n"));
        }
        for event in export.events.iter().skip(skip) {
            let t = event.get("t_ns").and_then(Value::as_u64).unwrap_or(0);
            let kind = event.get("kind").and_then(Value::as_str).unwrap_or("?");
            let fields = event
                .get("fields")
                .map(Value::to_compact)
                .unwrap_or_else(|| "{}".to_string());
            out.push_str(&format!("  t={t}ns {kind} {fields}\n"));
        }
    }
    out
}

/// Parse and render a JSONL export in one step.
pub fn render(jsonl: &str) -> Result<String, String> {
    Ok(render_export(&parse(jsonl)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        r#"{"type":"meta","schema":1,"journal_evicted":2,"journal_capacity":4096}"#,
        "\n",
        r#"{"type":"counter","name":"pkts_tx","labels":{"tenant":"0"},"value":10}"#,
        "\n",
        r#"{"type":"counter","name":"pkts_tx","labels":{"tenant":"1"},"value":20}"#,
        "\n",
        r#"{"type":"counter","name":"drops","labels":{"queue":"n0.p0"},"value":3}"#,
        "\n",
        r#"{"type":"gauge","name":"depth","labels":{},"value":-1}"#,
        "\n",
        r#"{"type":"histogram","name":"fct_ns","labels":{"tenant":"0"},"count":2,"min":5,"max":9,"mean":7.0,"p50":5,"p90":9,"p99":9,"buckets":[[5,5,1],[9,9,1]]}"#,
        "\n",
        r#"{"type":"event","t_ns":7,"kind":"recompile","fields":{"version":2}}"#,
        "\n",
    );

    #[test]
    fn parses_all_line_types() {
        let export = parse(SAMPLE).unwrap();
        assert_eq!(export.schema, Some(1));
        assert_eq!(export.journal_evicted, 2);
        assert_eq!(export.counters.len(), 3);
        assert_eq!(export.gauges.len(), 1);
        assert_eq!(export.histograms.len(), 1);
        assert_eq!(export.events.len(), 1);
        assert_eq!(export.gauges[0].value, -1);
        assert_eq!(export.histograms[0].p90, Some(9));
        assert_eq!(export.histograms[0].buckets, vec![(5, 5, 1), (9, 9, 1)]);
    }

    #[test]
    fn renders_per_tenant_and_per_queue_pivots() {
        let text = render(SAMPLE).unwrap();
        assert!(text.contains("per-tenant:"), "{text}");
        assert!(text.contains("per-queue:"), "{text}");
        assert!(text.contains("n0.p0"), "{text}");
        assert!(text.contains("recompile"), "{text}");
        // Tenant 1 row carries its counter value.
        let tenant_row = text
            .lines()
            .find(|l| l.trim_start().starts_with('1') && l.contains("20"))
            .unwrap_or_else(|| panic!("no tenant-1 row in:\n{text}"));
        assert!(tenant_row.contains("20"));
    }

    #[test]
    fn profile_lines_render_as_their_own_section() {
        let jsonl = concat!(
            r#"{"type":"meta","schema":1,"journal_evicted":0}"#,
            "\n",
            r#"{"type":"profile","name":"event_dispatch","count":4,"total_ns":200,"min_ns":10,"max_ns":90,"mean_ns":50}"#,
            "\n",
        );
        let export = parse(jsonl).unwrap();
        assert_eq!(export.profiles.len(), 1);
        assert_eq!(export.profiles[0].mean_ns, 50);
        let text = render(jsonl).unwrap();
        assert!(text.contains("self-profile (wall clock):"), "{text}");
        assert!(text.contains("event_dispatch"), "{text}");
    }

    #[test]
    fn truncated_journal_carries_a_warning() {
        let text = render(SAMPLE).unwrap();
        assert!(text.contains("warning: journal overflowed"), "{text}");
        let clean = r#"{"type":"meta","schema":1,"journal_evicted":0}
{"type":"event","t_ns":7,"kind":"tick","fields":{}}
"#;
        let text = render(clean).unwrap();
        assert!(!text.contains("warning: journal overflowed"), "{text}");
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = parse("{\"type\":\"meta\"}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn unknown_types_are_ignored() {
        let export = parse(r#"{"type":"mystery","x":1}"#).unwrap();
        assert!(export.counters.is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn roundtrips_live_export() {
        let t = crate::Telemetry::enabled();
        t.counter("pkts_tx", &[("tenant", "7")]).add(5);
        t.histogram("fct_ns", &[("tenant", "7")]).record(1234);
        let text = render(&t.export_jsonl()).unwrap();
        assert!(text.contains("per-tenant:"), "{text}");
        assert!(text.contains("pkts_tx"), "{text}");
    }
}
