//! Regenerates the paper's Fig. 2 scenario quantitatively: a data-center
//! workload timeline where tenants T1 (interactive/pFabric) and T2
//! (deadline/EDF) are active until `t1`, then go idle while T3
//! (background/FQ) starts. The runtime monitor detects the shift, the
//! adapter re-synthesizes, and we report:
//!
//! * the active set and per-tenant bands at each control-plane tick;
//! * rank-space compaction (joint span before vs after reclamation) —
//!   fewer ranks means fewer strict-priority queues needed on a commodity
//!   switch (§3.4);
//! * re-synthesis latency (the "event-driven controller" cost, §2).
//!
//! Usage: cargo run -p qvisor-bench --release --bin fig2_timeline

use qvisor_core::{
    analyze, synthesize, MonitorConfig, Policy, RuntimeAdapter, RuntimeMonitor, SynthConfig,
    TenantSpec, ViolationAction,
};
use qvisor_ranking::RankRange;
use qvisor_sim::{FlowId, Nanos, NodeId, Packet, SimRng, TenantId};
use std::time::Instant;

fn mk_packet(tenant: u16, rank: u64, at: Nanos) -> Packet {
    Packet::data(
        FlowId(tenant as u64),
        TenantId(tenant),
        0,
        1_500,
        NodeId(0),
        NodeId(1),
        rank,
        at,
    )
}

fn main() {
    let specs = vec![
        TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(0, 100_000)).with_levels(256),
        TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(0, 10_000)).with_levels(64),
        TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(0, 1_000)).with_levels(32),
    ];
    let policy = Policy::parse("T1 + T2 >> T3").unwrap();
    let synth_cfg = SynthConfig::default();
    let monitor_cfg = MonitorConfig {
        violation_action: ViolationAction::Clamp,
        idle_after: Nanos::from_millis(5),
        drift_ratio: 4.0,
    };

    let t0 = Instant::now();
    let joint = synthesize(&specs, &policy, synth_cfg).unwrap();
    let initial_synth = t0.elapsed();
    let mut monitor = RuntimeMonitor::new(&specs, monitor_cfg);
    let mut adapter = RuntimeAdapter::new(specs.clone(), policy, synth_cfg, monitor_cfg);

    println!("t=0        deploy over {{T1, T2, T3}} (policy T1 + T2 >> T3)");
    println!(
        "           joint span {}, synth {:?}",
        joint.output_span(),
        initial_synth
    );
    let report = analyze(&joint);
    assert!(report.all_guarantees_hold());

    // Timeline: packets observed by the monitor, with control-plane ticks
    // interleaved causally. Phase A (t < t1): T1 + T2 active.
    let mut rng = SimRng::seed_from(1);
    let t1_moment = Nanos::from_millis(10);
    for i in 0..20_000u64 {
        let at = Nanos::from_micros(i / 2);
        let (tenant, rank) = if i % 2 == 0 {
            (1u16, rng.below(90_000))
        } else {
            (2u16, rng.below(9_000))
        };
        monitor.observe(&mut mk_packet(tenant, rank, at), at);
    }

    // Control-plane tick mid-phase-A. T3 has not transmitted yet, so a
    // proposal shrinking the active set to {T1, T2} is the expected
    // steady-state (its bands would be reclaimed); we keep the full
    // deployment because T3 is *contracted*, just idle — a policy choice.
    let tick_a = Nanos::from_millis(9);
    match adapter.propose(&monitor, tick_a) {
        Some(a) => println!(
            "t={tick_a}   proposal: active {:?} (T3 contracted but idle; deferred)",
            a.active
        ),
        None => println!("t={tick_a}   no change"),
    }

    // Phase B (t >= t1): T1/T2 stop, T3 starts.
    for i in 0..20_000u64 {
        let at = t1_moment + Nanos::from_micros(i / 2);
        monitor.observe(&mut mk_packet(3, rng.below(1_000), at), at);
    }

    // Control-plane tick after t1 once T1/T2 have been idle past the
    // window while T3 is still transmitting.
    let tick_b = t1_moment + Nanos::from_millis(12);
    let proposal = adapter
        .propose(&monitor, tick_b)
        .expect("activity shift must be detected");
    println!(
        "t={tick_b}  proposal: active {:?}, tightened {:?}",
        proposal.active, proposal.tightened
    );
    let t1 = Instant::now();
    let new_joint = adapter
        .apply(&proposal)
        .expect("T3 remains")
        .expect("re-synthesis succeeds");
    let resynth = t1.elapsed();
    let report = analyze(&new_joint);
    assert!(report.all_guarantees_hold());

    let before = joint.output_span();
    let after = new_joint.output_span();
    println!(
        "           re-synthesized in {resynth:?}; joint span {before} -> {after} \
         ({}x compaction)",
        before.width() / after.width().max(1)
    );
    println!(
        "           T3 best rank: {} -> {}",
        joint.chain(TenantId(3)).unwrap().apply(0),
        new_joint.chain(TenantId(3)).unwrap().apply(0)
    );
    println!("\nFig. 2's t1 transition handled: idle bands reclaimed, guarantees re-verified.");

    // ------------------------------------------------------------------
    // Part 2: the same timeline *in the network* — per-tenant goodput over
    // time with live adaptation on, reproducing Fig. 2's traffic-volume
    // curves from an actual simulation.
    // ------------------------------------------------------------------
    println!("\n=== in-network timeline (2x4-host leaf-spine, live adaptation) ===");
    in_network_timeline();
}

fn in_network_timeline() {
    use qvisor_core::UnknownTenantAction;
    use qvisor_netsim::{NewCbr, NewFlow, QvisorSetup, SchedulerKind, SimConfig, Simulation};
    use qvisor_ranking::{ByteCountFq, Edf, PFabric};
    use qvisor_topology::{LeafSpine, LeafSpineConfig};

    let fabric = LeafSpine::build(&LeafSpineConfig::small());
    let hosts = fabric.all_hosts();
    let t1_moment = Nanos::from_millis(30);
    let horizon = Nanos::from_millis(60);

    let specs = vec![
        TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(0, 2_000)).with_levels(128),
        TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(0, 500)).with_levels(32),
        TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(0, 10_000)).with_levels(32),
    ];
    let cfg = SimConfig {
        seed: 4,
        horizon,
        scheduler: SchedulerKind::Pifo,
        sample_interval: Some(Nanos::from_millis(5)),
        adaptation_interval: Some(Nanos::from_millis(10)),
        qvisor: Some(QvisorSetup {
            specs,
            policy: "T1 + T2 >> T3".into(),
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope: Default::default(),
            monitor: Some(MonitorConfig {
                violation_action: ViolationAction::Clamp,
                idle_after: Nanos::from_millis(8),
                drift_ratio: 4.0,
            }),
        }),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(fabric.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(TenantId(1), Box::new(PFabric::new(1_000, 2_000)));
    sim.register_rank_fn(TenantId(2), Box::new(Edf::default_datacenter()));
    sim.register_rank_fn(TenantId(3), Box::new(ByteCountFq::new(1_460, 10_000)));

    // Phase A (t < t1): T1 sends short flows, T2 a CBR stream.
    for i in 0..40u64 {
        sim.add_flow(NewFlow::new(
            TenantId(1),
            hosts[(i % 4) as usize],
            hosts[4 + (i % 4) as usize],
            200_000,
            Nanos::from_micros(600 * i),
        ));
    }
    sim.add_cbr(NewCbr {
        tenant: TenantId(2),
        src: hosts[1],
        dst: hosts[6],
        rate_bps: 300_000_000,
        pkt_size: 1_500,
        start: Nanos::ZERO,
        stop: t1_moment,
        deadline_offset: Nanos::from_micros(500),
    });
    // Phase B (t >= t1): T3 background elephants.
    for i in 0..2u64 {
        sim.add_flow(NewFlow::new(
            TenantId(3),
            hosts[(2 * i) as usize],
            hosts[(5 + 2 * i) as usize],
            2_000_000,
            t1_moment + Nanos::from_millis(i),
        ));
    }

    let r = sim.run();
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "t (ms)", "T1 (Mbps)", "T2 (Mbps)", "T3 (Mbps)"
    );
    let interval = Nanos::from_millis(5);
    let mut windows: std::collections::BTreeMap<u64, [f64; 3]> = Default::default();
    for t in [TenantId(1), TenantId(2), TenantId(3)] {
        for (at, bps) in r.goodput_series_bps(t, interval) {
            windows.entry(at.as_nanos()).or_insert([0.0; 3])[(t.0 - 1) as usize] = bps / 1e6;
        }
    }
    for (at, row) in &windows {
        println!(
            "{:>10.1} {:>12.0} {:>12.0} {:>12.0}",
            *at as f64 / 1e6,
            row[0],
            row[1],
            row[2]
        );
    }
    println!(
        "\nreconfigurations during the run: {} (T1/T2 bands reclaimed after t1=30ms)",
        r.reconfigurations
    );
}
