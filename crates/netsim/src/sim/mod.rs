//! The packet-level network simulator (the repo's Netbench equivalent).
//!
//! A deterministic discrete-event loop over output-queued nodes: hosts run
//! transport state machines and tag packets with tenant ranks; every output
//! port owns a scheduler-model queue; switches (and hosts) run QVISOR's
//! pre-processor at egress when deployed. Links have a serialization rate
//! and a propagation delay; routing is precomputed ECMP.
//!
//! The implementation is split by concern:
//!
//! * [`mod@self`] — the [`Simulation`] state, construction (including the
//!   QVISOR synthesis/deployment hookup), and the event dispatch loop;
//! * `traffic` — traffic sources: reliable flows and CBR streams, packet
//!   emission, and retransmission timers;
//! * `forward` — device/port forwarding: the pre-processor and monitor
//!   hookup, queueing, and link serialization;
//! * `deliver` — destination-side delivery, ACK generation, and per-tenant
//!   stats collection;
//! * `queues` — per-port scheduler-model queue construction.

mod deliver;
mod forward;
mod queues;
mod sharded;
#[cfg(test)]
mod tests;
mod traffic;

pub use sharded::run_sharded;
pub use traffic::{NewCbr, NewFlow};

use crate::config::SimConfig;
use crate::report::SimReport;
use qvisor_core::{JointPolicy, Policy, PreProcessor, QvisorError, RuntimeAdapter, RuntimeMonitor};
use qvisor_ranking::{RankCtx, RankFn};
use qvisor_sim::{
    json::Value, stable_hash, EventQueue, FlowId, Nanos, NodeId, Packet, PacketArena, PacketKind,
    PacketSlot, TenantId,
};
use qvisor_telemetry::{Profiler, TraceKind, TraceRecord};
use qvisor_topology::{Routes, Topology};
use std::collections::BTreeMap;

use queues::{Port, TenantMetrics};
use traffic::FlowState;

#[derive(Clone, Copy, Debug)]
pub(in crate::sim) enum Event {
    FlowStart(FlowId),
    CbrEmit(FlowId),
    PortFree {
        node: NodeId,
        port: usize,
    },
    Arrive {
        node: NodeId,
    },
    Timeout {
        flow: FlowId,
        seq: u64,
        attempt: u32,
    },
    /// Periodic control-plane tick driving runtime adaptation.
    ControlTick,
    /// Periodic goodput sampling tick.
    Sample,
}

/// Content-derived same-instant ordering key (see
/// [`EventQueue::schedule_keyed`]).
///
/// Events scheduled for the same nanosecond pop in `(class, node, a, b)`
/// order, every component a pure function of the event's *content* — never
/// of the order the scheduling code happened to run in. That makes the pop
/// order identical between the sequential engine and the sharded engine,
/// where cross-shard arrivals are injected at window barriers, i.e. in a
/// scheduling order the sequential engine never sees.
///
/// Class 0 (control/sample ticks) sorts before every packet event, so a
/// delivery at exactly a sampling instant counts toward the *next* window
/// in both engines — matching the sharded coordinator, which flushes the
/// window at the barrier before processing events at the tick time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(in crate::sim) struct EventKey {
    class: u8,
    node: u32,
    a: u64,
    b: u64,
}

pub(in crate::sim) fn kind_tag(kind: &PacketKind) -> u64 {
    match kind {
        PacketKind::Data => 0,
        PacketKind::Ack { .. } => 1,
        PacketKind::Datagram => 2,
    }
}

impl EventKey {
    pub(in crate::sim) fn control_tick() -> EventKey {
        EventKey {
            class: 0,
            node: 0,
            a: 0,
            b: 0,
        }
    }

    pub(in crate::sim) fn sample() -> EventKey {
        EventKey {
            class: 0,
            node: 0,
            a: 1,
            b: 0,
        }
    }

    /// Source-side traffic events: `FlowStart` and `CbrEmit` (a flow id is
    /// one or the other, never both, so they share a class).
    pub(in crate::sim) fn flow_event(src: NodeId, flow: FlowId) -> EventKey {
        EventKey {
            class: 1,
            node: src.index() as u32,
            a: flow.0,
            b: 0,
        }
    }

    pub(in crate::sim) fn timeout(src: NodeId, flow: FlowId, seq: u64, attempt: u32) -> EventKey {
        EventKey {
            class: 2,
            node: src.index() as u32,
            a: flow.0,
            b: (seq << 16) | (attempt as u64 & 0xFFFF),
        }
    }

    pub(in crate::sim) fn port_free(node: NodeId, port: usize) -> EventKey {
        EventKey {
            class: 3,
            node: node.index() as u32,
            a: port as u64,
            b: 0,
        }
    }

    /// Arrival of `p` at `to`. `(flow, seq, kind, sent_at)` identifies a
    /// packet instance: retransmissions and their ACKs differ in
    /// `sent_at`, duplicates of one instance cannot coexist in flight.
    ///
    /// Same-instant arrivals at one node order oldest-`sent_at` first,
    /// then by packet-identity hash. Sorting by flow id directly would
    /// systematically favour lower-numbered flows at every identical-
    /// timestamp arrival tie — in perfectly symmetric workloads (equal
    /// flows in lockstep over one bottleneck) that bias compounds into
    /// starvation. The hash varies per packet, so residual tie winners
    /// alternate pseudo-randomly and no flow is structurally preferred.
    /// (Queue admission is priority-drop, so fairness never hinges on
    /// arrival-tie order — see `PifoTree`'s drop policy.)
    pub(in crate::sim) fn arrive(to: NodeId, p: &Packet) -> EventKey {
        EventKey {
            class: 4,
            node: to.index() as u32,
            a: p.sent_at.as_nanos(),
            b: stable_hash(&[p.flow.0, p.seq, kind_tag(&p.kind), p.sent_at.as_nanos()]),
        }
    }
}

/// The simulator. Build with [`Simulation::new`], register tenant rank
/// functions, add traffic, then [`Simulation::run`].
pub struct Simulation {
    pub(in crate::sim) topo: Topology,
    pub(in crate::sim) routes: Routes,
    pub(in crate::sim) cfg: SimConfig,
    pub(in crate::sim) joint: Option<JointPolicy>,
    pub(in crate::sim) preproc: Option<PreProcessor>,
    pub(in crate::sim) monitor: Option<RuntimeMonitor>,
    pub(in crate::sim) adapter: Option<RuntimeAdapter>,
    /// The event core. Payloads are `Copy`: packets in flight are parked
    /// in `arena` and referenced by slot, so scheduling an event moves a
    /// few words instead of boxing a packet.
    pub(in crate::sim) events: EventQueue<(Event, Option<PacketSlot>), EventKey>,
    /// In-flight packet storage (freelist-recycled; no per-packet allocation
    /// on the forwarding path).
    pub(in crate::sim) arena: PacketArena,
    pub(in crate::sim) ports: Vec<Vec<Port>>,
    /// `port_of[node][neighbor raw id]` = port index.
    pub(in crate::sim) port_of: Vec<BTreeMap<u32, usize>>,
    pub(in crate::sim) flows: Vec<FlowState>,
    pub(in crate::sim) rank_fns: Vec<Option<Box<dyn RankFn>>>,
    pub(in crate::sim) report: SimReport,
    pub(in crate::sim) reliable_total: u64,
    pub(in crate::sim) reliable_done: u64,
    pub(in crate::sim) cbr_live: u64,
    /// Packets in flight *as accounted by this engine instance*. Signed:
    /// a shard decrements for packets whose increment happened on the
    /// sending shard, so per-shard values go negative; only the sum
    /// across shards (and the sequential engine's single instance) is the
    /// true count.
    pub(in crate::sim) in_flight: i64,
    /// Bytes delivered per tenant since the last sampling tick.
    pub(in crate::sim) window_bytes: BTreeMap<TenantId, u64>,
    pub(in crate::sim) tenant_metrics: BTreeMap<TenantId, TenantMetrics>,
    /// Wall-clock cost of handling one event (self-profiler site).
    pub(in crate::sim) dispatch_prof: Profiler,
    /// Ownership view when this instance is one shard of a sharded run;
    /// `None` in the sequential engine (this instance owns every node).
    pub(in crate::sim) shard: Option<sharded::ShardView>,
    /// Cross-shard handoffs produced in the current window: packets whose
    /// next hop lands on a node another shard owns. Drained at barriers.
    pub(in crate::sim) outbox: Vec<sharded::Handoff>,
}

impl Simulation {
    /// Build a simulation over `topo` with `cfg`. Synthesizes and deploys
    /// the QVISOR joint policy when configured.
    pub fn new(topo: Topology, cfg: SimConfig) -> Result<Simulation, QvisorError> {
        let routes = Routes::compute(&topo);
        let (joint, preproc, monitor, adapter) = match &cfg.qvisor {
            Some(setup) => {
                let policy = Policy::parse(&setup.policy)?;
                // determinism: allowed (self-profiler measures host
                // synthesis cost; stripped from deterministic exports)
                let started = std::time::Instant::now(); // determinism: allowed
                let joint = qvisor_core::synthesize(&setup.specs, &policy, setup.synth)?;
                let synth_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                cfg.telemetry
                    .histogram("runtime_synth_ns", &[])
                    .record(synth_ns);
                cfg.telemetry.profiler("synthesize").record_ns(synth_ns);
                cfg.telemetry.gauge("runtime_transform_version", &[]).set(1);
                let preproc = PreProcessor::new(&joint, setup.unknown);
                let monitor = setup
                    .monitor
                    .map(|mc| RuntimeMonitor::new(&setup.specs, mc));
                let adapter = match (cfg.adaptation_interval, setup.monitor) {
                    (Some(_), Some(mc)) => Some(
                        RuntimeAdapter::new(setup.specs.clone(), policy.clone(), setup.synth, mc)
                            .with_telemetry(&cfg.telemetry),
                    ),
                    (Some(_), None) => {
                        return Err(QvisorError::Deployment(
                            "adaptation_interval requires a runtime monitor".into(),
                        ))
                    }
                    _ => None,
                };
                (Some(joint), Some(preproc), monitor, adapter)
            }
            None => {
                if cfg.adaptation_interval.is_some() {
                    return Err(QvisorError::Deployment(
                        "adaptation_interval requires a QVISOR deployment".into(),
                    ));
                }
                (None, None, None, None)
            }
        };

        let (ports, port_of) = queues::build_ports(&topo, &cfg, joint.as_ref())?;
        let events = EventQueue::with_core(cfg.event_core);
        let dispatch_prof = cfg.telemetry.profiler("event_dispatch");
        Ok(Simulation {
            topo,
            routes,
            cfg,
            joint,
            preproc,
            monitor,
            adapter,
            events,
            arena: PacketArena::with_capacity(64),
            ports,
            port_of,
            flows: Vec::new(),
            rank_fns: Vec::new(),
            report: SimReport::default(),
            reliable_total: 0,
            reliable_done: 0,
            cbr_live: 0,
            in_flight: 0,
            window_bytes: BTreeMap::new(),
            tenant_metrics: BTreeMap::new(),
            dispatch_prof,
            shard: None,
            outbox: Vec::new(),
        })
    }

    /// The synthesized joint policy, when QVISOR is deployed.
    pub fn joint_policy(&self) -> Option<&JointPolicy> {
        self.joint.as_ref()
    }

    /// Register the rank function computing `tenant`'s packet ranks at the
    /// end hosts. Tenants without one emit rank 0.
    pub fn register_rank_fn(&mut self, tenant: TenantId, f: Box<dyn RankFn>) {
        if self.rank_fns.len() <= tenant.index() {
            self.rank_fns.resize_with(tenant.index() + 1, || None);
        }
        self.rank_fns[tenant.index()] = Some(f);
    }

    pub(in crate::sim) fn compute_rank(&mut self, tenant: TenantId, ctx: &RankCtx) -> u64 {
        match self
            .rank_fns
            .get_mut(tenant.index())
            .and_then(|f| f.as_mut())
        {
            Some(f) => f.rank(ctx),
            None => 0,
        }
    }

    fn all_traffic_done(&self) -> bool {
        self.reliable_done == self.reliable_total && self.cbr_live == 0 && self.in_flight == 0
    }

    /// Does this engine instance own `node`? The sequential engine owns
    /// everything; a shard owns the nodes its partition assigned to it.
    pub(in crate::sim) fn owns(&self, node: NodeId) -> bool {
        match &self.shard {
            Some(view) => view.owner[node.index()] == view.index,
            None => true,
        }
    }

    /// Schedule a cross-shard arrival received at a window barrier. The
    /// coordinator guarantees `at` is at or past every event this shard
    /// has already processed (conservative lookahead), so the schedule
    /// never violates event-queue monotonicity.
    pub(in crate::sim) fn inject_arrival(&mut self, at: Nanos, to: NodeId, p: Packet) {
        let key = EventKey::arrive(to, &p);
        let slot = self.arena.insert(p);
        self.events
            .schedule_keyed(at, key, (Event::Arrive { node: to }, Some(slot)));
    }

    /// Advance through every local event strictly before `bound` — the
    /// sharded engine's inner loop. Dispatch is identical to
    /// [`Simulation::run`]'s, but counted events land in the shard `book`
    /// (feeding the coordinator's quiescence rewind) instead of the
    /// report, and packets leaving the shard accumulate in `outbox`.
    pub(in crate::sim) fn advance_below(&mut self, bound: Nanos, book: &mut sharded::ShardBook) {
        while let Some(t) = self.events.peek_time() {
            if t >= bound {
                break;
            }
            let (now, key, (ev, packet)) = self.events.pop_keyed().expect("peeked");
            let before = (self.reliable_done, self.cbr_live, self.in_flight);
            if self.dispatch_event(now, ev, packet) {
                let progressed = (self.reliable_done, self.cbr_live, self.in_flight) != before;
                book.record(now, key, progressed);
            }
        }
    }

    /// One control-plane tick: feed the monitor's view to the adapter;
    /// on a proposal, re-synthesize and hot-reload the pre-processor.
    ///
    /// Queue contents keep their old transformed ranks until they drain —
    /// the transition cost §2 acknowledges ("emptying the buffers") — but
    /// every packet processed after the reload uses the new joint policy.
    fn control_tick(&mut self, now: Nanos) {
        let (Some(adapter), Some(monitor), Some(preproc)) = (
            self.adapter.as_mut(),
            self.monitor.as_ref(),
            self.preproc.as_mut(),
        ) else {
            return;
        };
        if let Some(proposal) = adapter.propose(monitor, now) {
            if let Ok(Some(new_joint)) = adapter.apply(&proposal) {
                preproc.reload(&new_joint);
                self.joint = Some(new_joint);
                self.report.reconfigurations += 1;
                self.cfg.telemetry.event(
                    now,
                    "reconfiguration",
                    &[("total", Value::from(self.report.reconfigurations))],
                );
            }
        }
    }

    /// Process one popped event. Returns `false` when the event was a
    /// stale no-op — a retransmission timer for an already-acknowledged
    /// sequence. Those are *silently skipped*: no `report.events` count,
    /// no `end_time` advance. A sharded run drains stale timers past the
    /// point where the sequential engine breaks out of its loop, so
    /// counting them would make the engines diverge on dead work.
    pub(in crate::sim) fn dispatch_event(
        &mut self,
        now: Nanos,
        ev: Event,
        packet: Option<PacketSlot>,
    ) -> bool {
        let _dispatch = self.dispatch_prof.time();
        match ev {
            Event::FlowStart(flow) => {
                if self.cfg.tracer.sampled(flow.0) {
                    if let FlowState::Reliable { sender, .. } = &self.flows[flow.index()] {
                        let def = *sender.def();
                        self.cfg.tracer.record(TraceRecord::new(
                            now,
                            flow.0,
                            0,
                            def.tenant.0,
                            TraceKind::FlowStart { size: def.size },
                        ));
                    }
                }
                let sends = match &mut self.flows[flow.index()] {
                    FlowState::Reliable { sender, .. } => sender.on_start(now),
                    FlowState::Cbr { .. } => unreachable!("FlowStart on CBR"),
                };
                for req in sends {
                    self.send_data(flow, req, 0, now);
                }
            }
            Event::CbrEmit(flow) => self.emit_cbr(flow, now),
            Event::PortFree { node, port } => {
                self.ports[node.index()][port].busy = false;
                self.try_transmit(node, port, now);
            }
            Event::Arrive { node } => {
                let p = self.arena.take(packet.expect("Arrive carries a packet"));
                self.on_arrive(node, p, now);
            }
            Event::Timeout { flow, seq, attempt } => {
                let req = match &mut self.flows[flow.index()] {
                    FlowState::Reliable { sender, .. } => sender.on_timeout(seq, now),
                    FlowState::Cbr { .. } => None,
                };
                match req {
                    Some(req) => self.send_data(flow, req, attempt + 1, now),
                    None => return false,
                }
            }
            Event::ControlTick => {
                self.control_tick(now);
                let interval = self.cfg.adaptation_interval.expect("tick implies interval");
                if now + interval <= self.cfg.horizon {
                    self.events.schedule_keyed(
                        now + interval,
                        EventKey::control_tick(),
                        (Event::ControlTick, None),
                    );
                }
            }
            Event::Sample => {
                self.flush_window(now);
                let interval = self.cfg.sample_interval.expect("tick implies interval");
                if now + interval <= self.cfg.horizon {
                    self.events.schedule_keyed(
                        now + interval,
                        EventKey::sample(),
                        (Event::Sample, None),
                    );
                }
            }
        }
        true
    }

    /// Close the current goodput sampling window at `at`: push every
    /// tenant's non-zero delivered-byte count and reset the window.
    pub(in crate::sim) fn flush_window(&mut self, at: Nanos) {
        for (&tenant, bytes) in self.window_bytes.iter_mut() {
            if *bytes > 0 {
                self.report.samples.push((at, tenant, *bytes));
                *bytes = 0;
            }
        }
    }

    /// Run to quiescence or the horizon; returns the report.
    pub fn run(mut self) -> SimReport {
        if let Some(interval) = self.cfg.adaptation_interval {
            assert!(
                interval > Nanos::ZERO,
                "adaptation interval must be positive"
            );
            self.events.schedule_keyed(
                interval,
                EventKey::control_tick(),
                (Event::ControlTick, None),
            );
        }
        if let Some(interval) = self.cfg.sample_interval {
            assert!(interval > Nanos::ZERO, "sample interval must be positive");
            self.events
                .schedule_keyed(interval, EventKey::sample(), (Event::Sample, None));
        }
        while let Some(t) = self.events.peek_time() {
            if t > self.cfg.horizon {
                break;
            }
            if self.all_traffic_done() {
                break;
            }
            let (now, (ev, packet)) = self.events.pop().expect("peeked");
            if self.dispatch_event(now, ev, packet) {
                self.report.events += 1;
                self.report.end_time = now;
            }
        }
        // Flush the final partial sampling window so the series sums to
        // the delivered bytes.
        if self.cfg.sample_interval.is_some() {
            self.flush_window(self.report.end_time);
        }
        self.report.incomplete_flows = self.reliable_total - self.reliable_done;
        self.report.fct.sort_canonical();
        self.report
    }
}
