//! The policy store: the fixed tenant universe, the live set, and the
//! append-only log of accepted mutations.
//!
//! The daemon's config file declares the *universe* — every tenant that may
//! ever submit, with a default spec — and the operator policy over that
//! universe. At runtime tenants go live by submitting (possibly revised)
//! specs and leave by withdrawing; the store projects the operator policy
//! onto whichever subset is live. The accepted-mutation log is the daemon's
//! determinism artifact: replaying it sequentially through a fresh control
//! plane must rebuild byte-identical state.

use std::collections::BTreeSet;

use qvisor_core::config_api::{DeploymentConfig, SynthOptions, TenantConfig};
use qvisor_core::{retain_tenants, Policy};
use qvisor_sim::json::Value;
use qvisor_sim::TenantId;

use crate::protocol::tenant_config_value;

/// One accepted mutation, as recorded in the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogEntry {
    /// An admitted `submit-policy` (the spec as submitted).
    Submit(TenantConfig),
    /// An admitted `withdraw-tenant`.
    Withdraw(String),
}

impl LogEntry {
    /// Serialize as one log line object.
    pub fn to_value(&self) -> Value {
        match self {
            LogEntry::Submit(t) => Value::object()
                .set("op", "submit")
                .set("tenant", tenant_config_value(t)),
            LogEntry::Withdraw(name) => Value::object()
                .set("op", "withdraw")
                .set("tenant", name.as_str()),
        }
    }

    /// Parse one log line object (the inverse of [`LogEntry::to_value`]).
    pub fn from_value(v: &Value) -> Result<LogEntry, String> {
        match v.get("op").and_then(Value::as_str) {
            Some("submit") => {
                let t = v.get("tenant").ok_or("submit log entry has no tenant")?;
                Ok(LogEntry::Submit(crate::protocol::tenant_config_from_value(
                    t,
                )?))
            }
            Some("withdraw") => Ok(LogEntry::Withdraw(
                v.get("tenant")
                    .and_then(Value::as_str)
                    .ok_or("withdraw log entry has no tenant name")?
                    .to_string(),
            )),
            _ => Err("log entry has no known 'op'".to_string()),
        }
    }
}

/// Universe + live set + accepted log. Pure data: all admission logic
/// lives in [`crate::control::ControlPlane`].
#[derive(Clone, Debug)]
pub struct PolicyStore {
    universe: Vec<TenantConfig>,
    policy: Policy,
    policy_text: String,
    synth: SynthOptions,
    live: BTreeSet<String>,
    log: Vec<LogEntry>,
}

impl PolicyStore {
    /// Build a store from a daemon config. The config's tenant list is the
    /// closed universe; its policy must parse and reference only universe
    /// names. No tenant is live initially.
    pub fn new(config: &DeploymentConfig) -> Result<PolicyStore, String> {
        let mut seen_names = BTreeSet::new();
        let mut seen_ids = BTreeSet::new();
        for t in &config.tenants {
            if !seen_names.insert(t.name.clone()) {
                return Err(format!("duplicate tenant name '{}' in universe", t.name));
            }
            if !seen_ids.insert(t.id) {
                return Err(format!("duplicate tenant id {} in universe", t.id));
            }
        }
        let policy = Policy::parse(&config.policy).map_err(|e| format!("operator policy: {e}"))?;
        for name in policy.tenant_names() {
            if !seen_names.contains(name) {
                return Err(format!(
                    "operator policy names '{name}' which is not in the tenant universe"
                ));
            }
        }
        // Full-universe validation (ranges, levels) via the config API.
        config
            .build()
            .map_err(|e| format!("universe config: {e}"))?;
        Ok(PolicyStore {
            universe: config.tenants.clone(),
            policy,
            policy_text: config.policy.clone(),
            synth: config.synth,
            live: BTreeSet::new(),
            log: Vec::new(),
        })
    }

    /// The universe entry for `name`.
    pub fn universe_entry(&self, name: &str) -> Option<&TenantConfig> {
        self.universe.iter().find(|t| t.name == name)
    }

    /// The full universe, declaration order.
    pub fn universe(&self) -> &[TenantConfig] {
        &self.universe
    }

    /// The operator policy over the full universe, as configured.
    pub fn operator_policy(&self) -> &str {
        &self.policy_text
    }

    /// Synthesizer options from the daemon config.
    pub fn synth(&self) -> SynthOptions {
        self.synth
    }

    /// Is `name` currently live?
    pub fn is_live(&self, name: &str) -> bool {
        self.live.contains(name)
    }

    /// Number of live tenants.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Live tenant names, in universe declaration order.
    pub fn live_names(&self) -> Vec<String> {
        self.universe
            .iter()
            .filter(|t| self.live.contains(&t.name))
            .map(|t| t.name.clone())
            .collect()
    }

    /// Live tenant ids, in universe declaration order.
    pub fn live_ids(&self) -> Vec<TenantId> {
        self.universe
            .iter()
            .filter(|t| self.live.contains(&t.name))
            .map(|t| TenantId(t.id))
            .collect()
    }

    /// The operator policy projected onto the live set (`None` when no
    /// live tenant is scheduled).
    pub fn projected_policy(&self) -> Option<Policy> {
        let names = self.live_names();
        let keep: Vec<&str> = names.iter().map(String::as_str).collect();
        retain_tenants(&self.policy, &keep)
    }

    /// The candidate deployment document for the current live set with
    /// `replace` (a submission under admission) swapped in and counted as
    /// live. This is exactly the document `qvisor check` would be given:
    /// rejections are reproducible outside the daemon.
    pub fn effective_config_with(&self, replace: &TenantConfig) -> Option<DeploymentConfig> {
        let tenants: Vec<TenantConfig> = self
            .universe
            .iter()
            .filter(|t| self.live.contains(&t.name) || t.name == replace.name)
            .map(|t| {
                if t.name == replace.name {
                    replace.clone()
                } else {
                    t.clone()
                }
            })
            .collect();
        let names: Vec<&str> = tenants.iter().map(|t| t.name.as_str()).collect();
        let policy = retain_tenants(&self.policy, &names)?;
        Some(DeploymentConfig {
            tenants,
            policy: policy.to_string(),
            synth: self.synth,
        })
    }

    /// The effective deployment document for the *current* live set.
    pub fn effective_config(&self) -> Option<DeploymentConfig> {
        let tenants: Vec<TenantConfig> = self
            .universe
            .iter()
            .filter(|t| self.live.contains(&t.name))
            .cloned()
            .collect();
        let policy = self.projected_policy()?;
        Some(DeploymentConfig {
            tenants,
            policy: policy.to_string(),
            synth: self.synth,
        })
    }

    /// Record an accepted submission: the universe entry is replaced by
    /// the submitted spec, the tenant goes live, the log grows.
    pub fn commit_submit(&mut self, t: TenantConfig) {
        if let Some(slot) = self.universe.iter_mut().find(|u| u.name == t.name) {
            *slot = t.clone();
        }
        self.live.insert(t.name.clone());
        self.log.push(LogEntry::Submit(t));
    }

    /// Record an accepted withdrawal.
    pub fn commit_withdraw(&mut self, name: &str) {
        self.live.remove(name);
        self.log.push(LogEntry::Withdraw(name.to_string()));
    }

    /// The accepted-mutation log, commit order.
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> DeploymentConfig {
        DeploymentConfig::from_json(
            r#"{
                "tenants": [
                    {"id": 1, "name": "gold", "algorithm": "pFabric", "rank_min": 0, "rank_max": 999, "levels": 16},
                    {"id": 2, "name": "silver", "algorithm": "EDF", "rank_min": 0, "rank_max": 499},
                    {"id": 3, "name": "bronze", "algorithm": "WFQ", "rank_min": 0, "rank_max": 99}
                ],
                "policy": "gold >> silver + bronze"
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn starts_empty_and_projects_live_subset() {
        let mut store = PolicyStore::new(&universe()).unwrap();
        assert_eq!(store.live_count(), 0);
        assert!(store.projected_policy().is_none());
        store.commit_submit(store.universe_entry("silver").unwrap().clone());
        assert_eq!(store.projected_policy().unwrap().to_string(), "silver");
        store.commit_submit(store.universe_entry("gold").unwrap().clone());
        assert_eq!(
            store.projected_policy().unwrap().to_string(),
            "gold >> silver"
        );
        assert_eq!(store.live_names(), vec!["gold", "silver"]);
        store.commit_withdraw("gold");
        assert_eq!(store.projected_policy().unwrap().to_string(), "silver");
        assert_eq!(store.log().len(), 3);
    }

    #[test]
    fn effective_config_swaps_in_the_submission() {
        let mut store = PolicyStore::new(&universe()).unwrap();
        store.commit_submit(store.universe_entry("bronze").unwrap().clone());
        let mut revised = store.universe_entry("gold").unwrap().clone();
        revised.rank_max = 123_456;
        let cand = store.effective_config_with(&revised).unwrap();
        assert_eq!(cand.tenants.len(), 2);
        assert_eq!(cand.tenants[0].name, "gold");
        assert_eq!(cand.tenants[0].rank_max, 123_456);
        assert_eq!(cand.policy, "gold >> bronze");
        // The store itself is untouched until commit.
        assert_eq!(store.universe_entry("gold").unwrap().rank_max, 999);
        assert!(!store.is_live("gold"));
    }

    #[test]
    fn rejects_bad_universes() {
        let mut cfg = universe();
        cfg.tenants[1].name = "gold".into();
        assert!(PolicyStore::new(&cfg).unwrap_err().contains("duplicate"));

        let mut cfg = universe();
        cfg.policy = "gold >> ghost".into();
        assert!(PolicyStore::new(&cfg)
            .unwrap_err()
            .contains("not in the tenant universe"));

        let mut cfg = universe();
        cfg.policy = "gold >>".into();
        assert!(PolicyStore::new(&cfg).unwrap_err().contains("policy"));
    }
}
