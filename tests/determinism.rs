//! Bit-reproducibility: identical seeds must give identical simulations,
//! different seeds different ones — across the full stack (workload
//! generation, ECMP, fault injection, QVISOR).

use qvisor::core::{SynthConfig, TenantSpec, UnknownTenantAction};
use qvisor::netsim::{QvisorSetup, SchedulerKind, SimConfig, Simulation};
use qvisor::ranking::{PFabric, RankRange};
use qvisor::sim::{Nanos, SimRng, TenantId};
use qvisor::telemetry::Telemetry;
use qvisor::topology::{LeafSpine, LeafSpineConfig};
use qvisor::transport::SizeBucket;
use qvisor::workloads::{EmpiricalCdf, PoissonFlowGen};

fn fingerprint(seed: u64) -> (u64, u64, Option<f64>, u64) {
    let (f, _) = world(seed, Telemetry::disabled());
    f
}

fn world(seed: u64, telemetry: Telemetry) -> ((u64, u64, Option<f64>, u64), String) {
    let fabric = LeafSpine::build(&LeafSpineConfig::small());
    let hosts = fabric.all_hosts();
    let specs = vec![
        TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(0, 10_000)).with_levels(128),
    ];
    let cfg = SimConfig {
        seed,
        random_loss: 0.01,
        horizon: Nanos::from_millis(50),
        scheduler: SchedulerKind::Pifo,
        qvisor: Some(QvisorSetup {
            specs,
            policy: "T1".into(),
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope: Default::default(),
            monitor: None,
        }),
        telemetry,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(fabric.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(TenantId(1), Box::new(PFabric::default_datacenter()));
    let sizes = EmpiricalCdf::web_search().scaled(1, 20);
    let flows = PoissonFlowGen {
        tenant: TenantId(1),
        hosts: &hosts,
        sizes: &sizes,
        rate_flows_per_sec: 20_000.0,
    }
    .generate(150, &mut SimRng::seed_from(seed ^ 0xABCD));
    for f in &flows {
        sim.add_generated(f);
    }
    let r = sim.run();
    (
        (
            r.events,
            r.end_time.as_nanos(),
            r.fct.mean_fct_ms(None, SizeBucket::ALL),
            r.tenant(TenantId(1)).dropped_pkts + r.random_losses,
        ),
        format!("{r:?}"),
    )
}

#[test]
fn same_seed_same_world() {
    assert_eq!(fingerprint(7), fingerprint(7));
}

#[test]
fn different_seed_different_world() {
    let a = fingerprint(7);
    let b = fingerprint(8);
    assert_ne!(a, b, "distinct seeds should diverge: {a:?}");
}

/// Observing the run must not change it: with telemetry enabled the full
/// [`qvisor::netsim::SimReport`] (compared byte-for-byte via `Debug`) is
/// identical to the telemetry-off run, and the registry actually saw
/// traffic — proving instrumentation is on yet side-effect-free.
#[test]
fn telemetry_does_not_perturb_the_world() {
    let telemetry = Telemetry::enabled();
    let (on, on_report) = world(7, telemetry.clone());
    let (off, off_report) = world(7, Telemetry::disabled());
    assert_eq!(on, off, "telemetry changed the simulation fingerprint");
    assert_eq!(
        on_report, off_report,
        "telemetry changed the simulation report"
    );
    if telemetry.is_enabled() {
        // Feature "enabled" compiled in: the registry must have observed
        // the same world the report describes, not an empty one.
        let sent = telemetry
            .counter("net_sent_pkts", &[("tenant", "T1")])
            .get();
        assert!(sent > 0, "enabled telemetry recorded nothing");
    }
}
