//! Telemetry wrapper: reports every queue's behaviour through the unified
//! [`qvisor_telemetry`] subsystem.
//!
//! This is the single metrics path for scheduler models. It counts offered,
//! admitted, dropped, and dequeued packets, tracks occupancy gauges,
//! detects *rank inversions* per dequeue (the standard fidelity metric for
//! PIFO approximations — a dequeue is an inversion when some queued packet
//! has a strictly lower rank), and records per-packet queueing delay.
//!
//! It is also the scheduler's hook into the [`qvisor_telemetry::trace`]
//! flight recorder: when handed an enabled [`Tracer`], every enqueue,
//! dequeue, drop, and inversion of a sampled flow becomes a lifecycle span
//! on this queue's track — and inversions name the exact packet that was
//! overtaken, not just a count.
//!
//! When both the [`Telemetry`] handle and the [`Tracer`] are disabled the
//! wrapper keeps no mirror state and each operation adds only a branch.

use crate::queue::{Enqueue, PacketQueue};
use qvisor_sim::{Nanos, Packet, PacketKind, Rank};
use qvisor_telemetry::{
    Counter, Gauge, Histogram, Profiler, SloMonitor, Telemetry, TraceKind, TraceRecord, Tracer,
};
use std::collections::BTreeMap;

/// Identity of a resident packet: `(flow, seq, is_ack)`. ACKs share
/// `(flow, seq)` with the data packet they acknowledge, so the flag keeps
/// the two distinct in the mirror.
type Resident = (u64, u64, bool);

fn identity(p: &Packet) -> Resident {
    (p.flow.0, p.seq, matches!(p.kind, PacketKind::Ack { .. }))
}

/// Wraps any [`PacketQueue`] and reports its behaviour as telemetry.
///
/// Metrics are labelled with the queue's name (`queue`) and discipline
/// (`kind`, from [`PacketQueue::kind`]):
///
/// | metric | type | meaning |
/// |---|---|---|
/// | `sched_offered_pkts` | counter | packets offered to the queue |
/// | `sched_admitted_pkts` | counter | packets admitted |
/// | `sched_dropped_pkts` | counter | rejected arrivals + evicted residents |
/// | `sched_dequeued_pkts` | counter | packets dequeued |
/// | `sched_rank_inversions` | counter | dequeues that were rank inversions |
/// | `sched_depth_pkts` | gauge | current occupancy in packets |
/// | `sched_depth_bytes` | gauge | current occupancy in bytes |
/// | `sched_sojourn_ns` | histogram | per-packet queueing delay |
///
/// Wall-clock cost of the wrapped operations aggregates under the
/// `sched_enqueue` / `sched_dequeue` profile sites.
pub struct InstrumentedQueue<Q: PacketQueue> {
    inner: Q,
    enabled: bool,
    /// Mirror of resident packets: rank -> identities in arrival order.
    /// Keeps inversion detection O(log n) per operation and independent of
    /// the inner model, and lets an inversion name the overtaken packet.
    /// Empty when disabled.
    ranks: BTreeMap<Rank, Vec<Resident>>,
    tracer: Tracer,
    /// Streaming SLO monitor fed per-tenant dequeue waits and inversions
    /// (disabled by default; attach with [`Self::with_monitor`]).
    monitor: SloMonitor,
    trace_label: u32,
    offered: Counter,
    admitted: Counter,
    dropped: Counter,
    dequeued: Counter,
    inversions: Counter,
    depth_pkts: Gauge,
    depth_bytes: Gauge,
    sojourn_ns: Histogram,
    enq_prof: Profiler,
    deq_prof: Profiler,
}

impl<Q: PacketQueue> InstrumentedQueue<Q> {
    /// Wrap `inner`, registering metrics labelled `queue=queue_label` on
    /// `telemetry`, with packet tracing disabled.
    pub fn new(inner: Q, telemetry: &Telemetry, queue_label: &str) -> InstrumentedQueue<Q> {
        InstrumentedQueue::with_tracer(inner, telemetry, &Tracer::disabled(), queue_label)
    }

    /// Wrap `inner`, reporting metrics on `telemetry` and lifecycle spans
    /// of sampled flows on `tracer` (the queue's track is named
    /// `queue_label`). Either handle may be disabled independently.
    pub fn with_tracer(
        inner: Q,
        telemetry: &Telemetry,
        tracer: &Tracer,
        queue_label: &str,
    ) -> InstrumentedQueue<Q> {
        let labels = [("queue", queue_label), ("kind", inner.kind())];
        InstrumentedQueue {
            enabled: telemetry.is_enabled() || tracer.is_enabled(),
            ranks: BTreeMap::new(),
            tracer: tracer.clone(),
            monitor: SloMonitor::disabled(),
            trace_label: tracer.intern(queue_label),
            offered: telemetry.counter("sched_offered_pkts", &labels),
            admitted: telemetry.counter("sched_admitted_pkts", &labels),
            dropped: telemetry.counter("sched_dropped_pkts", &labels),
            dequeued: telemetry.counter("sched_dequeued_pkts", &labels),
            inversions: telemetry.counter("sched_rank_inversions", &labels),
            depth_pkts: telemetry.gauge("sched_depth_pkts", &labels),
            depth_bytes: telemetry.gauge("sched_depth_bytes", &labels),
            sojourn_ns: telemetry.histogram("sched_sojourn_ns", &labels),
            enq_prof: telemetry.profiler("sched_enqueue"),
            deq_prof: telemetry.profiler("sched_dequeue"),
            inner,
        }
    }

    /// Attach a streaming SLO monitor: every dequeue feeds the packet's
    /// tenant, its queueing delay, and whether the dequeue was a
    /// cross-tenant rank inversion. An enabled monitor activates the
    /// wrapper even when telemetry and tracing are both disabled.
    pub fn with_monitor(mut self, monitor: &SloMonitor) -> InstrumentedQueue<Q> {
        self.enabled = self.enabled || monitor.is_enabled();
        self.monitor = monitor.clone();
        self
    }

    /// The wrapped queue.
    pub fn inner(&self) -> &Q {
        &self.inner
    }

    /// Dequeues counted so far (0 when the telemetry handle is disabled).
    pub fn dequeued_count(&self) -> u64 {
        self.dequeued.get()
    }

    /// Rank inversions counted so far.
    pub fn inversion_count(&self) -> u64 {
        self.inversions.get()
    }

    fn note_resident(&mut self, rank: Rank, id: Resident) {
        self.ranks.entry(rank).or_default().push(id);
    }

    fn forget_resident(&mut self, rank: Rank, id: Resident) {
        match self.ranks.get_mut(&rank) {
            Some(ids) => {
                if let Some(pos) = ids.iter().position(|&r| r == id) {
                    ids.remove(pos);
                } else {
                    debug_assert!(false, "packet {id:?} not resident at rank {rank}");
                }
                if ids.is_empty() {
                    self.ranks.remove(&rank);
                }
            }
            None => debug_assert!(false, "rank {rank} not resident"),
        }
    }

    fn update_depth(&self) {
        self.depth_pkts.set(self.inner.len() as i64);
        self.depth_bytes.set(self.inner.bytes() as i64);
    }

    fn trace(&self, p: &Packet, now: Nanos, kind: TraceKind) {
        if self.tracer.sampled(p.flow.0) {
            self.tracer.record(
                TraceRecord::new(now, p.flow.0, p.seq, p.tenant.0, kind)
                    .at_label(self.trace_label)
                    .as_ack(matches!(p.kind, PacketKind::Ack { .. })),
            );
        }
    }
}

impl<Q: PacketQueue> PacketQueue for InstrumentedQueue<Q> {
    fn enqueue(&mut self, mut p: Packet, now: Nanos) -> Enqueue {
        if !self.enabled {
            return self.inner.enqueue(p, now);
        }
        let _scope = self.enq_prof.time();
        self.offered.inc();
        p.enqueued_at = now;
        let rank = p.txf_rank;
        let id = identity(&p);
        self.trace(&p, now, TraceKind::Enqueue { rank });
        let outcome = self.inner.enqueue(p, now);
        match &outcome {
            Enqueue::Accepted => {
                self.admitted.inc();
                self.note_resident(rank, id);
            }
            Enqueue::AcceptedDropped(dropped) => {
                self.admitted.inc();
                self.note_resident(rank, id);
                self.dropped.add(dropped.len() as u64);
                // Evicted packets were residents; drop them from the mirror.
                for d in dropped {
                    self.forget_resident(d.txf_rank, identity(d));
                    self.trace(d, now, TraceKind::Drop { rank: d.txf_rank });
                }
            }
            Enqueue::Rejected(rejected) => {
                self.dropped.inc();
                self.trace(rejected, now, TraceKind::Drop { rank });
            }
        }
        self.update_depth();
        outcome
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        if !self.enabled {
            return self.inner.dequeue(now);
        }
        let _scope = self.deq_prof.time();
        let p = self.inner.dequeue(now)?;
        self.forget_resident(p.txf_rank, identity(&p));
        self.dequeued.inc();
        let wait = now.saturating_sub(p.enqueued_at).as_nanos();
        self.trace(
            &p,
            now,
            TraceKind::Dequeue {
                rank: p.txf_rank,
                wait_ns: wait,
            },
        );
        let mut inverted = false;
        if let Some((&best, ids)) = self.ranks.first_key_value() {
            if best < p.txf_rank {
                inverted = true;
                self.inversions.inc();
                // The overtaken packet: oldest resident at the best rank.
                if let Some(&(loser_flow, loser_seq, _)) = ids.first() {
                    self.trace(
                        &p,
                        now,
                        TraceKind::Inversion {
                            rank: p.txf_rank,
                            loser_flow,
                            loser_seq,
                            loser_rank: best,
                        },
                    );
                }
            }
        }
        self.monitor.on_dequeue(now, p.tenant.0, wait, inverted);
        self.sojourn_ns.record(wait);
        self.update_depth();
        Some(p)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn bytes(&self) -> u64 {
        self.inner.bytes()
    }

    fn head_rank(&self) -> Option<Rank> {
        self.inner.head_rank()
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::FifoQueue;
    use crate::pifo::PifoQueue;
    use crate::queue::Capacity;
    use qvisor_sim::{FlowId, NodeId, TenantId};

    fn pkt(seq: u64, rank: Rank) -> Packet {
        flow_pkt(1, seq, rank)
    }

    fn flow_pkt(flow: u64, seq: u64, rank: Rank) -> Packet {
        let mut p = Packet::data(
            FlowId(flow),
            TenantId(0),
            seq,
            100,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        );
        p.txf_rank = rank;
        p
    }

    fn counter(t: &Telemetry, name: &str, q: &str, kind: &str) -> u64 {
        t.counter(name, &[("queue", q), ("kind", kind)]).get()
    }

    #[test]
    fn counts_flow_through_telemetry() {
        let t = Telemetry::enabled();
        let mut q = InstrumentedQueue::new(FifoQueue::new(Capacity::UNBOUNDED), &t, "q0");
        q.enqueue(pkt(0, 9), Nanos::ZERO);
        q.enqueue(pkt(1, 1), Nanos::ZERO);
        q.dequeue(Nanos(500)); // rank 9 leaves while rank 1 waits: inversion
        assert_eq!(counter(&t, "sched_offered_pkts", "q0", "fifo"), 2);
        assert_eq!(counter(&t, "sched_admitted_pkts", "q0", "fifo"), 2);
        assert_eq!(counter(&t, "sched_dequeued_pkts", "q0", "fifo"), 1);
        assert_eq!(counter(&t, "sched_rank_inversions", "q0", "fifo"), 1);
        assert_eq!(
            t.gauge("sched_depth_pkts", &[("queue", "q0"), ("kind", "fifo")])
                .get(),
            1
        );
        // Sojourn: one sample of 500 ns.
        let h = t.histogram("sched_sojourn_ns", &[("queue", "q0"), ("kind", "fifo")]);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), Some(500));
    }

    #[test]
    fn pifo_has_zero_inversions() {
        let t = Telemetry::enabled();
        let mut q = InstrumentedQueue::new(PifoQueue::new(Capacity::UNBOUNDED), &t, "q0");
        for (i, r) in [5u64, 1, 9, 3, 7].into_iter().enumerate() {
            q.enqueue(pkt(i as u64, r), Nanos::ZERO);
        }
        while q.dequeue(Nanos::ZERO).is_some() {}
        assert_eq!(q.inversion_count(), 0);
        assert_eq!(q.dequeued_count(), 5);
    }

    #[test]
    fn drop_accounting_covers_rejects_and_evictions() {
        let t = Telemetry::enabled();
        let mut q = InstrumentedQueue::new(PifoQueue::new(Capacity::bytes(200)), &t, "q0");
        q.enqueue(pkt(0, 5), Nanos::ZERO);
        q.enqueue(pkt(1, 6), Nanos::ZERO);
        q.enqueue(pkt(2, 1), Nanos::ZERO); // evicts rank 6
        q.enqueue(pkt(3, 9), Nanos::ZERO); // rejected
        assert_eq!(counter(&t, "sched_offered_pkts", "q0", "pifo"), 4);
        assert_eq!(counter(&t, "sched_admitted_pkts", "q0", "pifo"), 3);
        assert_eq!(counter(&t, "sched_dropped_pkts", "q0", "pifo"), 2);
        // Mirror stays consistent: drain without panic.
        while q.dequeue(Nanos::ZERO).is_some() {}
        assert_eq!(counter(&t, "sched_dequeued_pkts", "q0", "pifo"), 2);
    }

    #[test]
    fn monitor_feed_sees_waits_and_inversions() {
        use qvisor_telemetry::{AlertMetric, AlertRule};
        let t = Telemetry::disabled();
        let monitor = SloMonitor::enabled(vec![AlertRule {
            metric: AlertMetric::InversionRate,
            tenant: 0,
            window_ns: 1_000,
            threshold: 0.4,
        }]);
        let mut q = InstrumentedQueue::new(FifoQueue::new(Capacity::UNBOUNDED), &t, "q0")
            .with_monitor(&monitor);
        q.enqueue(pkt(0, 9), Nanos::ZERO);
        q.enqueue(pkt(1, 1), Nanos::ZERO);
        q.dequeue(Nanos(500)); // rank 9 leaves while rank 1 waits: inversion
        assert_eq!(monitor.alerts_fired(), 1, "1/1 inversions over 0.4");
        let export = monitor.export_jsonl();
        assert!(export.contains("slo_rank_inversions"), "{export}");
        assert!(export.contains("slo_queue_delay_p50_ns"), "{export}");
    }

    #[test]
    fn disabled_handle_is_transparent() {
        let t = Telemetry::disabled();
        let mut q = InstrumentedQueue::new(FifoQueue::new(Capacity::UNBOUNDED), &t, "q0");
        q.enqueue(pkt(0, 9), Nanos::ZERO);
        assert_eq!(q.len(), 1);
        assert!(q.ranks.is_empty(), "no mirror state when disabled");
        let p = q.dequeue(Nanos(5)).unwrap();
        // Disabled instrumentation must not stamp packets.
        assert_eq!(p.enqueued_at, Nanos::ZERO);
        assert_eq!(q.dequeued_count(), 0);
    }

    mod traced {
        use super::*;
        use qvisor_telemetry::{TraceConfig, TraceData};

        fn spans_of(data: &TraceData, kind_tag: &str) -> usize {
            data.records
                .iter()
                .filter(|r| r.kind.tag() == kind_tag)
                .count()
        }

        #[test]
        fn lifecycle_spans_reach_the_tracer() {
            let t = Telemetry::disabled();
            let tr = Tracer::enabled(TraceConfig::default());
            let mut q =
                InstrumentedQueue::with_tracer(FifoQueue::new(Capacity::UNBOUNDED), &t, &tr, "q0");
            q.enqueue(pkt(0, 9), Nanos::ZERO);
            q.enqueue(pkt(1, 1), Nanos(10));
            q.dequeue(Nanos(500));
            let data = tr.snapshot();
            assert_eq!(spans_of(&data, "enqueue"), 2);
            assert_eq!(spans_of(&data, "dequeue"), 1);
            assert_eq!(spans_of(&data, "inversion"), 1);
            // Dequeue carries the measured residency.
            let dq = data
                .records
                .iter()
                .find(|r| r.kind.tag() == "dequeue")
                .unwrap();
            assert_eq!(
                dq.kind,
                TraceKind::Dequeue {
                    rank: 9,
                    wait_ns: 500
                }
            );
            assert_eq!(data.label_of(dq), Some("q0"));
        }

        #[test]
        fn inversion_names_the_overtaken_packet() {
            let t = Telemetry::enabled();
            let tr = Tracer::enabled(TraceConfig::default());
            let mut q =
                InstrumentedQueue::with_tracer(FifoQueue::new(Capacity::UNBOUNDED), &t, &tr, "q0");
            q.enqueue(flow_pkt(3, 0, 9), Nanos::ZERO);
            q.enqueue(flow_pkt(5, 7, 1), Nanos::ZERO);
            q.dequeue(Nanos(100)); // flow 3 overtakes flow 5
            let data = tr.snapshot();
            let inv = data
                .records
                .iter()
                .find(|r| r.kind.tag() == "inversion")
                .expect("inversion span");
            assert_eq!(inv.flow, 3);
            assert_eq!(
                inv.kind,
                TraceKind::Inversion {
                    rank: 9,
                    loser_flow: 5,
                    loser_seq: 7,
                    loser_rank: 1,
                }
            );
        }

        #[test]
        fn queue_drops_become_drop_spans() {
            let t = Telemetry::enabled();
            let tr = Tracer::enabled(TraceConfig::default());
            let mut q =
                InstrumentedQueue::with_tracer(PifoQueue::new(Capacity::bytes(200)), &t, &tr, "q0");
            q.enqueue(flow_pkt(1, 0, 5), Nanos::ZERO);
            q.enqueue(flow_pkt(2, 0, 6), Nanos::ZERO);
            q.enqueue(flow_pkt(3, 0, 1), Nanos::ZERO); // evicts flow 2
            q.enqueue(flow_pkt(4, 0, 9), Nanos::ZERO); // rejected
            let data = tr.snapshot();
            let drops: Vec<u64> = data
                .records
                .iter()
                .filter(|r| r.kind.tag() == "drop")
                .map(|r| r.flow)
                .collect();
            assert_eq!(drops, vec![2, 4]);
        }

        #[test]
        fn unsampled_flows_leave_no_spans() {
            let t = Telemetry::disabled();
            // A sparse sampler: find a flow it skips.
            let tr = Tracer::enabled(TraceConfig {
                sample_one_in: 1_000_000,
                ..TraceConfig::default()
            });
            let skipped = (0..u64::MAX).find(|&f| !tr.sampled(f)).unwrap();
            let mut q =
                InstrumentedQueue::with_tracer(FifoQueue::new(Capacity::UNBOUNDED), &t, &tr, "q0");
            q.enqueue(flow_pkt(skipped, 0, 5), Nanos::ZERO);
            q.dequeue(Nanos(10));
            assert!(tr.is_empty());
        }
    }
}
