//! The packet-level network simulator (the repo's Netbench equivalent).
//!
//! A deterministic discrete-event loop over output-queued nodes: hosts run
//! transport state machines and tag packets with tenant ranks; every output
//! port owns a scheduler-model queue; switches (and hosts) run QVISOR's
//! pre-processor at egress when deployed. Links have a serialization rate
//! and a propagation delay; routing is precomputed ECMP.

use crate::config::{SchedulerKind, SimConfig};
use crate::report::{SimReport, TenantTraffic};
use qvisor_core::{
    Backend, JointPolicy, Policy, PreProcessor, QvisorError, RuntimeAdapter, RuntimeMonitor,
    SpAdaptation, Verdict,
};
use qvisor_ranking::{RankCtx, RankFn};
use qvisor_scheduler::{
    AifoQueue, FifoQueue, InstrumentedQueue, PacketQueue, PathStep, PifoQueue, PifoTree,
    SpPifoMapper, StaticRangeMapper, StrictPriorityBank, TreePath, TreeShape,
};
use qvisor_sim::{
    json::Value, transmission_time, EventQueue, FlowId, Nanos, NodeId, Packet, PacketArena,
    PacketKind, PacketSlot, SimRng, TenantId,
};
use qvisor_telemetry::{Counter, Histogram, Profiler, TraceKind, TraceRecord};
use qvisor_topology::{NodeKind, Routes, Topology};
use qvisor_transport::{
    CbrDef, CbrSource, DatagramSink, FlowDef, FlowRecord, ReliableReceiver, ReliableSender, SendReq,
};
use qvisor_workloads::{GeneratedCbr, GeneratedFlow};
use std::collections::BTreeMap;

/// A reliable flow to add to the simulation.
#[derive(Clone, Copy, Debug)]
pub struct NewFlow {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Bytes to transfer.
    pub size: u64,
    /// Start time.
    pub start: Nanos,
    /// Optional absolute deadline (rank-function input only).
    pub deadline: Option<Nanos>,
    /// Fair-queueing weight.
    pub weight: u32,
}

impl NewFlow {
    /// A flow with weight 1 and no deadline.
    pub fn new(tenant: TenantId, src: NodeId, dst: NodeId, size: u64, start: Nanos) -> NewFlow {
        NewFlow {
            tenant,
            src,
            dst,
            size,
            start,
            deadline: None,
            weight: 1,
        }
    }
}

/// A CBR stream to add to the simulation.
#[derive(Clone, Copy, Debug)]
pub struct NewCbr {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Rate in bits per second.
    pub rate_bps: u64,
    /// Datagram wire size, bytes.
    pub pkt_size: u32,
    /// Start time.
    pub start: Nanos,
    /// Stop time.
    pub stop: Nanos,
    /// Deadline = emission + offset.
    pub deadline_offset: Nanos,
}

enum FlowState {
    Reliable {
        sender: ReliableSender,
        receiver: ReliableReceiver,
    },
    Cbr {
        source: CbrSource,
        sink: DatagramSink,
    },
}

struct Port {
    to: NodeId,
    rate_bps: u64,
    delay: Nanos,
    queue: Box<dyn PacketQueue>,
    busy: bool,
    /// Packets serialized onto the link (telemetry; no-op when disabled).
    tx_pkts: Counter,
    /// Bytes serialized onto the link.
    tx_bytes: Counter,
    /// Interned trace label of this port's queue/link track.
    trace_label: u32,
}

/// Cached per-tenant telemetry handles (one registry lookup per tenant,
/// not per packet).
struct TenantMetrics {
    sent_pkts: Counter,
    delivered_pkts: Counter,
    delivered_bytes: Counter,
    dropped_pkts: Counter,
    fct_ns: Histogram,
}

#[derive(Clone, Copy, Debug)]
enum Event {
    FlowStart(FlowId),
    CbrEmit(FlowId),
    PortFree {
        node: NodeId,
        port: usize,
    },
    Arrive {
        node: NodeId,
    },
    Timeout {
        flow: FlowId,
        seq: u64,
        attempt: u32,
    },
    /// Periodic control-plane tick driving runtime adaptation.
    ControlTick,
    /// Periodic goodput sampling tick.
    Sample,
}

/// The simulator. Build with [`Simulation::new`], register tenant rank
/// functions, add traffic, then [`Simulation::run`].
pub struct Simulation {
    topo: Topology,
    routes: Routes,
    cfg: SimConfig,
    joint: Option<JointPolicy>,
    preproc: Option<PreProcessor>,
    monitor: Option<RuntimeMonitor>,
    adapter: Option<RuntimeAdapter>,
    /// The event core. Payloads are `Copy`: packets in flight are parked
    /// in `arena` and referenced by slot, so scheduling an event moves a
    /// few words instead of boxing a packet.
    events: EventQueue<(Event, Option<PacketSlot>)>,
    /// In-flight packet storage (freelist-recycled; no per-packet allocation
    /// on the forwarding path).
    arena: PacketArena,
    ports: Vec<Vec<Port>>,
    /// `port_of[node][neighbor raw id]` = port index.
    port_of: Vec<BTreeMap<u32, usize>>,
    flows: Vec<FlowState>,
    rank_fns: Vec<Option<Box<dyn RankFn>>>,
    rng: SimRng,
    report: SimReport,
    reliable_total: u64,
    reliable_done: u64,
    cbr_live: u64,
    in_flight: u64,
    /// Bytes delivered per tenant since the last sampling tick.
    window_bytes: BTreeMap<TenantId, u64>,
    tenant_metrics: BTreeMap<TenantId, TenantMetrics>,
    /// Wall-clock cost of handling one event (self-profiler site).
    dispatch_prof: Profiler,
}

impl Simulation {
    /// Build a simulation over `topo` with `cfg`. Synthesizes and deploys
    /// the QVISOR joint policy when configured.
    pub fn new(topo: Topology, cfg: SimConfig) -> Result<Simulation, QvisorError> {
        let routes = Routes::compute(&topo);
        let (joint, preproc, monitor, adapter) = match &cfg.qvisor {
            Some(setup) => {
                let policy = Policy::parse(&setup.policy)?;
                let started = std::time::Instant::now();
                let joint = qvisor_core::synthesize(&setup.specs, &policy, setup.synth)?;
                let synth_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                cfg.telemetry
                    .histogram("runtime_synth_ns", &[])
                    .record(synth_ns);
                cfg.telemetry.profiler("synthesize").record_ns(synth_ns);
                cfg.telemetry.gauge("runtime_transform_version", &[]).set(1);
                let preproc = PreProcessor::new(&joint, setup.unknown);
                let monitor = setup
                    .monitor
                    .map(|mc| RuntimeMonitor::new(&setup.specs, mc));
                let adapter = match (cfg.adaptation_interval, setup.monitor) {
                    (Some(_), Some(mc)) => Some(
                        RuntimeAdapter::new(setup.specs.clone(), policy.clone(), setup.synth, mc)
                            .with_telemetry(&cfg.telemetry),
                    ),
                    (Some(_), None) => {
                        return Err(QvisorError::Deployment(
                            "adaptation_interval requires a runtime monitor".into(),
                        ))
                    }
                    _ => None,
                };
                (Some(joint), Some(preproc), monitor, adapter)
            }
            None => {
                if cfg.adaptation_interval.is_some() {
                    return Err(QvisorError::Deployment(
                        "adaptation_interval requires a QVISOR deployment".into(),
                    ));
                }
                (None, None, None, None)
            }
        };

        let mut ports = Vec::with_capacity(topo.node_count());
        let mut port_of = Vec::with_capacity(topo.node_count());
        for node in topo.nodes() {
            let kind = match (node.kind, cfg.host_scheduler) {
                (NodeKind::Host, Some(host_kind)) => host_kind,
                _ => cfg.scheduler,
            };
            let mut node_ports = Vec::new();
            let mut map = BTreeMap::new();
            for link in topo.out_links(node.id) {
                let label = format!("n{}.p{}", node.id.0, node_ports.len());
                let base = Self::make_queue_of(kind, &cfg, joint.as_ref())?;
                let queue: Box<dyn PacketQueue> =
                    if cfg.telemetry.is_enabled() || cfg.tracer.is_enabled() {
                        Box::new(InstrumentedQueue::with_tracer(
                            base,
                            &cfg.telemetry,
                            &cfg.tracer,
                            &label,
                        ))
                    } else {
                        base
                    };
                let link_labels = [("link", label.as_str())];
                map.insert(link.to.0, node_ports.len());
                node_ports.push(Port {
                    to: link.to,
                    rate_bps: link.rate_bps,
                    delay: link.delay,
                    queue,
                    busy: false,
                    tx_pkts: cfg.telemetry.counter("net_link_tx_pkts", &link_labels),
                    tx_bytes: cfg.telemetry.counter("net_link_tx_bytes", &link_labels),
                    trace_label: cfg.tracer.intern(&label),
                });
            }
            ports.push(node_ports);
            port_of.push(map);
        }

        let rng = SimRng::seed_from(cfg.seed).derive(0x5157_4953);
        let events = EventQueue::with_core(cfg.event_core);
        let dispatch_prof = cfg.telemetry.profiler("event_dispatch");
        Ok(Simulation {
            topo,
            routes,
            cfg,
            joint,
            preproc,
            monitor,
            adapter,
            events,
            arena: PacketArena::with_capacity(64),
            ports,
            port_of,
            flows: Vec::new(),
            rank_fns: Vec::new(),
            rng,
            report: SimReport::default(),
            reliable_total: 0,
            reliable_done: 0,
            cbr_live: 0,
            in_flight: 0,
            window_bytes: BTreeMap::new(),
            tenant_metrics: BTreeMap::new(),
            dispatch_prof,
        })
    }

    fn make_queue_of(
        kind: SchedulerKind,
        cfg: &SimConfig,
        joint: Option<&JointPolicy>,
    ) -> Result<Box<dyn PacketQueue>, QvisorError> {
        Ok(match kind {
            SchedulerKind::Fifo => Box::new(FifoQueue::new(cfg.buffer)),
            SchedulerKind::Pifo => Box::new(PifoQueue::new(cfg.buffer)),
            SchedulerKind::SpPifo { queues } => Box::new(StrictPriorityBank::new(
                SpPifoMapper::new(queues),
                cfg.buffer,
            )),
            SchedulerKind::StrictStatic { queues, span } => match joint {
                Some(j) => Backend::StrictPriority {
                    queues,
                    capacity: cfg.buffer,
                    adaptation: SpAdaptation::BandedStatic,
                }
                .build(j)?,
                None => Box::new(StrictPriorityBank::new(
                    StaticRangeMapper::new(span.min, span.max, queues),
                    cfg.buffer,
                )),
            },
            SchedulerKind::Aifo { window, burst } => {
                if cfg.buffer.bytes == u64::MAX {
                    return Err(QvisorError::Deployment(
                        "AIFO requires a finite buffer".into(),
                    ));
                }
                Box::new(AifoQueue::new(cfg.buffer, window, burst))
            }
            SchedulerKind::FairTree { tenants } => {
                if tenants == 0 {
                    return Err(QvisorError::Deployment(
                        "fair tree needs at least one tenant class".into(),
                    ));
                }
                let shape = TreeShape::Internal((0..tenants).map(|_| TreeShape::Leaf).collect());
                let mut vtimes = vec![0u64; tenants as usize];
                let classifier = move |p: &Packet| {
                    let class = (p.tenant.0 % tenants) as usize;
                    vtimes[class] += 1;
                    TreePath {
                        steps: vec![PathStep {
                            child: class,
                            rank: vtimes[class],
                        }],
                        leaf_rank: p.txf_rank,
                    }
                };
                Box::new(PifoTree::new(&shape, classifier, cfg.buffer))
            }
        })
    }

    /// The synthesized joint policy, when QVISOR is deployed.
    pub fn joint_policy(&self) -> Option<&JointPolicy> {
        self.joint.as_ref()
    }

    /// Register the rank function computing `tenant`'s packet ranks at the
    /// end hosts. Tenants without one emit rank 0.
    pub fn register_rank_fn(&mut self, tenant: TenantId, f: Box<dyn RankFn>) {
        if self.rank_fns.len() <= tenant.index() {
            self.rank_fns.resize_with(tenant.index() + 1, || None);
        }
        self.rank_fns[tenant.index()] = Some(f);
    }

    fn assert_host(&self, n: NodeId) {
        assert_eq!(self.topo.node(n).kind, NodeKind::Host, "{n} is not a host");
    }

    /// Add a reliable flow; returns its id.
    pub fn add_flow(&mut self, f: NewFlow) -> FlowId {
        self.assert_host(f.src);
        self.assert_host(f.dst);
        assert_ne!(f.src, f.dst, "flow cannot target its own source");
        assert!(f.size > 0, "empty flow");
        let id = FlowId(self.flows.len() as u64);
        let def = FlowDef {
            id,
            tenant: f.tenant,
            src: f.src,
            dst: f.dst,
            size: f.size,
            start: f.start,
            deadline: f.deadline,
            weight: f.weight,
        };
        self.flows.push(FlowState::Reliable {
            sender: ReliableSender::new(def, self.cfg.mss, self.cfg.cwnd),
            receiver: ReliableReceiver::new(),
        });
        self.reliable_total += 1;
        self.events.schedule(f.start, (Event::FlowStart(id), None));
        id
    }

    /// Add a CBR stream; returns its id.
    pub fn add_cbr(&mut self, c: NewCbr) -> FlowId {
        self.assert_host(c.src);
        self.assert_host(c.dst);
        assert_ne!(c.src, c.dst, "stream cannot target its own source");
        let id = FlowId(self.flows.len() as u64);
        let def = CbrDef {
            id,
            tenant: c.tenant,
            src: c.src,
            dst: c.dst,
            rate_bps: c.rate_bps,
            pkt_size: c.pkt_size,
            start: c.start,
            stop: c.stop,
            deadline_offset: c.deadline_offset,
        };
        let source = CbrSource::new(def);
        let first = source.next_at().expect("fresh CBR source has emissions");
        self.flows.push(FlowState::Cbr {
            source,
            sink: DatagramSink::new(),
        });
        self.cbr_live += 1;
        self.events.schedule(first, (Event::CbrEmit(id), None));
        id
    }

    /// Add a generated reliable flow (from `qvisor-workloads`).
    pub fn add_generated(&mut self, g: &GeneratedFlow) -> FlowId {
        self.add_flow(NewFlow {
            tenant: g.tenant,
            src: g.src,
            dst: g.dst,
            size: g.size,
            start: g.start,
            deadline: g.deadline,
            weight: 1,
        })
    }

    /// Add a generated CBR stream (from `qvisor-workloads`).
    pub fn add_generated_cbr(&mut self, g: &GeneratedCbr) -> FlowId {
        self.add_cbr(NewCbr {
            tenant: g.tenant,
            src: g.src,
            dst: g.dst,
            rate_bps: g.rate_bps,
            pkt_size: g.pkt_size,
            start: g.start,
            stop: g.stop,
            deadline_offset: g.deadline_offset,
        })
    }

    fn tenant_mut(&mut self, t: TenantId) -> &mut TenantTraffic {
        self.report.tenants.entry(t).or_default()
    }

    fn metrics(&mut self, t: TenantId) -> &TenantMetrics {
        let telemetry = &self.cfg.telemetry;
        self.tenant_metrics.entry(t).or_insert_with(|| {
            let tenant = format!("T{}", t.0);
            let labels = [("tenant", tenant.as_str())];
            TenantMetrics {
                sent_pkts: telemetry.counter("net_sent_pkts", &labels),
                delivered_pkts: telemetry.counter("net_delivered_pkts", &labels),
                delivered_bytes: telemetry.counter("net_delivered_bytes", &labels),
                dropped_pkts: telemetry.counter("net_dropped_pkts", &labels),
                fct_ns: telemetry.histogram("net_fct_ns", &labels),
            }
        })
    }

    fn compute_rank(&mut self, tenant: TenantId, ctx: &RankCtx) -> u64 {
        match self
            .rank_fns
            .get_mut(tenant.index())
            .and_then(|f| f.as_mut())
        {
            Some(f) => f.rank(ctx),
            None => 0,
        }
    }

    /// Record a lifecycle span for `p` on the flight recorder, if its flow
    /// is sampled. Pure observation: never touches simulation state.
    fn trace_pkt(&self, p: &Packet, now: Nanos, kind: TraceKind) {
        let tracer = &self.cfg.tracer;
        if tracer.sampled(p.flow.0) {
            tracer.record(
                TraceRecord::new(now, p.flow.0, p.seq, p.tenant.0, kind)
                    .as_ack(matches!(p.kind, PacketKind::Ack { .. })),
            );
        }
    }

    /// Retransmission timeout for `attempt` (exponential backoff, capped
    /// at 16x the base RTO) — bounds spurious retransmissions of packets
    /// starved behind their own flow's lower-ranked successors.
    fn rto_for(&self, attempt: u32) -> Nanos {
        self.cfg.rto * (1u64 << attempt.min(4))
    }

    /// Emit one data packet of a reliable flow. `attempt` is 0 for fresh
    /// sends and increments per retransmission of the same sequence.
    fn send_data(&mut self, flow: FlowId, req: SendReq, attempt: u32, now: Nanos) {
        let (def, acked) = match &self.flows[flow.index()] {
            FlowState::Reliable { sender, .. } => {
                (*sender.def(), sender.def().size - sender.remaining_bytes())
            }
            FlowState::Cbr { .. } => unreachable!("send_data on a CBR flow"),
        };
        let ctx = RankCtx {
            now,
            flow,
            flow_size: def.size,
            bytes_sent: acked,
            pkt_size: req.payload,
            deadline: def.deadline,
            weight: def.weight,
        };
        let rank = self.compute_rank(def.tenant, &ctx);
        let mut p = Packet::data(
            flow,
            def.tenant,
            req.seq,
            req.payload + self.cfg.header_bytes,
            def.src,
            def.dst,
            rank,
            now,
        );
        p.deadline = def.deadline;
        self.trace_pkt(&p, now, TraceKind::RankComputed { rank });
        self.tenant_mut(def.tenant).sent_pkts += 1;
        self.metrics(def.tenant).sent_pkts.inc();
        self.in_flight += 1;
        let rto = self.rto_for(attempt);
        self.events.schedule(
            now + rto,
            (
                Event::Timeout {
                    flow,
                    seq: req.seq,
                    attempt,
                },
                None,
            ),
        );
        self.forward(def.src, p, now);
    }

    /// Emit one CBR datagram.
    fn emit_cbr(&mut self, flow: FlowId, now: Nanos) {
        let (def, emission) = match &mut self.flows[flow.index()] {
            FlowState::Cbr { source, .. } => (*source.def(), source.emit(now)),
            FlowState::Reliable { .. } => unreachable!("emit_cbr on a reliable flow"),
        };
        let Some((seq, deadline)) = emission else {
            self.cbr_live -= 1;
            return;
        };
        let ctx = RankCtx {
            now,
            flow,
            flow_size: u64::MAX / 2, // open-ended stream
            bytes_sent: seq * def.pkt_size as u64,
            pkt_size: def.pkt_size,
            deadline: Some(deadline),
            weight: 1,
        };
        let rank = self.compute_rank(def.tenant, &ctx);
        let mut p = Packet::data(
            flow,
            def.tenant,
            seq,
            def.pkt_size,
            def.src,
            def.dst,
            rank,
            now,
        );
        p.kind = PacketKind::Datagram;
        p.deadline = Some(deadline);
        if seq == 0 {
            self.trace_pkt(
                &p,
                now,
                TraceKind::FlowStart {
                    size: def.pkt_size as u64,
                },
            );
        }
        self.trace_pkt(&p, now, TraceKind::RankComputed { rank });
        self.tenant_mut(def.tenant).sent_pkts += 1;
        self.metrics(def.tenant).sent_pkts.inc();
        self.in_flight += 1;
        self.forward(def.src, p, now);

        // Schedule the next emission or retire the stream.
        match match &self.flows[flow.index()] {
            FlowState::Cbr { source, .. } => source.next_at(),
            FlowState::Reliable { .. } => unreachable!(),
        } {
            Some(at) => self.events.schedule(at, (Event::CbrEmit(flow), None)),
            None => self.cbr_live -= 1,
        }
    }

    /// Move a packet sitting at `at` one hop toward its destination.
    fn forward(&mut self, at: NodeId, mut p: Packet, now: Nanos) {
        // Runtime monitor polices raw ranks once, at the first hop.
        if at == p.src {
            if let Some(m) = self.monitor.as_mut() {
                use qvisor_core::{Observation, ViolationAction};
                if let Observation::Violation(action) = m.observe(&mut p, now) {
                    self.report.monitor_violations += 1;
                    if action == ViolationAction::Drop {
                        self.trace_pkt(&p, now, TraceKind::Drop { rank: p.txf_rank });
                        self.drop_packet(&p, at);
                        return;
                    }
                }
            }
        }
        // Pre-processor at the configured scope (idempotent: transforms
        // the original tenant rank, so re-applying per hop is safe).
        let scope = self
            .cfg
            .qvisor
            .as_ref()
            .map(|q| q.scope)
            .unwrap_or_default();
        let apply_here = match scope {
            crate::config::PreprocScope::Everywhere => true,
            crate::config::PreprocScope::SwitchesOnly => {
                self.topo.node(at).kind == NodeKind::Switch
            }
            crate::config::PreprocScope::FirstHopOnly => at == p.src,
        };
        if apply_here {
            let raw_rank = p.rank;
            if let Some(pre) = self.preproc.as_mut() {
                if pre.process(&mut p) == Verdict::Drop {
                    self.report.preproc_dropped += 1;
                    self.trace_pkt(&p, now, TraceKind::Drop { rank: p.txf_rank });
                    self.drop_packet(&p, at);
                    return;
                }
                self.trace_pkt(
                    &p,
                    now,
                    TraceKind::Transform {
                        pre: raw_rank,
                        post: p.txf_rank,
                    },
                );
            }
        }
        let next = self.routes.ecmp_next_hop(at, p.dst, p.flow);
        let port = self.port_of[at.index()][&next.0];
        let outcome = self.ports[at.index()][port].queue.enqueue(p, now);
        for victim in outcome.dropped() {
            self.drop_packet(&victim, at);
        }
        self.try_transmit(at, port, now);
    }

    fn drop_packet(&mut self, p: &Packet, at: NodeId) {
        debug_assert!(self.in_flight > 0);
        self.in_flight -= 1;
        *self.report.node_drops.entry(at).or_insert(0) += 1;
        if p.is_payload() {
            self.tenant_mut(p.tenant).dropped_pkts += 1;
            self.metrics(p.tenant).dropped_pkts.inc();
        }
    }

    fn try_transmit(&mut self, node: NodeId, port: usize, now: Nanos) {
        let p = {
            let port_ref = &mut self.ports[node.index()][port];
            if port_ref.busy {
                return;
            }
            match port_ref.queue.dequeue(now) {
                Some(p) => p,
                None => return,
            }
        };
        let (rate, delay, to, trace_label) = {
            let port_ref = &mut self.ports[node.index()][port];
            port_ref.busy = true;
            port_ref.tx_pkts.inc();
            port_ref.tx_bytes.add(p.size as u64);
            (
                port_ref.rate_bps,
                port_ref.delay,
                port_ref.to,
                port_ref.trace_label,
            )
        };
        let tx = transmission_time(p.size as u64, rate);
        if self.cfg.tracer.sampled(p.flow.0) {
            self.cfg.tracer.record(
                TraceRecord::new(
                    now,
                    p.flow.0,
                    p.seq,
                    p.tenant.0,
                    TraceKind::TxStart {
                        bytes: p.size as u64,
                        tx_ns: tx.as_nanos(),
                        prop_ns: delay.as_nanos(),
                    },
                )
                .at_label(trace_label)
                .as_ack(matches!(p.kind, PacketKind::Ack { .. })),
            );
        }
        self.events
            .schedule(now + tx, (Event::PortFree { node, port }, None));
        let slot = self.arena.insert(p);
        self.events
            .schedule(now + tx + delay, (Event::Arrive { node: to }, Some(slot)));
    }

    fn on_arrive(&mut self, node: NodeId, p: Packet, now: Nanos) {
        if self.cfg.random_loss > 0.0 && self.rng.uniform() < self.cfg.random_loss {
            self.report.random_losses += 1;
            self.trace_pkt(&p, now, TraceKind::Drop { rank: p.txf_rank });
            self.drop_packet(&p, node);
            return;
        }
        if node == p.dst {
            self.deliver(p, now);
        } else {
            self.forward(node, p, now);
        }
    }

    fn deliver(&mut self, p: Packet, now: Nanos) {
        debug_assert!(self.in_flight > 0);
        self.in_flight -= 1;
        let latency_ns = now.saturating_sub(p.sent_at).as_nanos();
        self.trace_pkt(
            &p,
            now,
            if matches!(p.kind, PacketKind::Ack { .. }) {
                TraceKind::Ack { latency_ns }
            } else {
                TraceKind::Deliver { latency_ns }
            },
        );
        match p.kind {
            PacketKind::Data => {
                let payload = p.size - self.cfg.header_bytes;
                let fresh = match &mut self.flows[p.flow.index()] {
                    FlowState::Reliable { receiver, .. } => receiver.on_data(p.seq, payload),
                    FlowState::Cbr { .. } => unreachable!("data packet on CBR flow"),
                };
                if fresh {
                    let t = self.tenant_mut(p.tenant);
                    t.delivered_pkts += 1;
                    t.delivered_bytes += payload as u64;
                    *self.window_bytes.entry(p.tenant).or_insert(0) += payload as u64;
                    let m = self.metrics(p.tenant);
                    m.delivered_pkts.inc();
                    m.delivered_bytes.add(payload as u64);
                }
                // Always ACK (sender dedupes).
                let ack = p.ack_for(self.cfg.ack_bytes, now);
                self.in_flight += 1;
                self.forward(ack.src, ack, now);
            }
            PacketKind::Ack { acked_seq } => {
                let outcome = match &mut self.flows[p.flow.index()] {
                    FlowState::Reliable { sender, .. } => sender.on_ack(acked_seq, now),
                    FlowState::Cbr { .. } => unreachable!("ACK on CBR flow"),
                };
                for req in outcome.sends {
                    self.send_data(p.flow, req, 0, now);
                }
                if outcome.completed {
                    let (def, _) = match &self.flows[p.flow.index()] {
                        FlowState::Reliable { sender, .. } => (*sender.def(), ()),
                        FlowState::Cbr { .. } => unreachable!(),
                    };
                    self.report.fct.record(FlowRecord {
                        flow: p.flow,
                        tenant: def.tenant,
                        size: def.size,
                        start: def.start,
                        end: now,
                    });
                    let fct = now.saturating_sub(def.start);
                    self.metrics(def.tenant).fct_ns.record(fct.as_nanos());
                    self.cfg.telemetry.event(
                        now,
                        "flow_complete",
                        &[
                            ("flow", Value::from(p.flow.0)),
                            ("tenant", Value::from(def.tenant.0 as u64)),
                            ("size_bytes", Value::from(def.size)),
                            ("fct_ns", Value::from(fct)),
                        ],
                    );
                    self.reliable_done += 1;
                }
            }
            PacketKind::Datagram => {
                let payload = p.size.saturating_sub(self.cfg.header_bytes);
                let (met, missed) = match &mut self.flows[p.flow.index()] {
                    FlowState::Cbr { sink, .. } => {
                        let before = (sink.received(),);
                        sink.on_datagram(p.sent_at, p.deadline, now);
                        let _ = before;
                        match p.deadline {
                            Some(d) if now <= d => (1, 0),
                            Some(_) => (0, 1),
                            None => (0, 0),
                        }
                    }
                    FlowState::Reliable { .. } => unreachable!("datagram on reliable flow"),
                };
                let t = self.tenant_mut(p.tenant);
                t.delivered_pkts += 1;
                t.delivered_bytes += payload as u64;
                t.deadline_met += met;
                t.deadline_missed += missed;
                *self.window_bytes.entry(p.tenant).or_insert(0) += payload as u64;
                let m = self.metrics(p.tenant);
                m.delivered_pkts.inc();
                m.delivered_bytes.add(payload as u64);
            }
        }
    }

    fn all_traffic_done(&self) -> bool {
        self.reliable_done == self.reliable_total && self.cbr_live == 0 && self.in_flight == 0
    }

    /// One control-plane tick: feed the monitor's view to the adapter;
    /// on a proposal, re-synthesize and hot-reload the pre-processor.
    ///
    /// Queue contents keep their old transformed ranks until they drain —
    /// the transition cost §2 acknowledges ("emptying the buffers") — but
    /// every packet processed after the reload uses the new joint policy.
    fn control_tick(&mut self, now: Nanos) {
        let (Some(adapter), Some(monitor), Some(preproc)) = (
            self.adapter.as_mut(),
            self.monitor.as_ref(),
            self.preproc.as_mut(),
        ) else {
            return;
        };
        if let Some(proposal) = adapter.propose(monitor, now) {
            if let Some(Ok(new_joint)) = adapter.apply(&proposal) {
                preproc.reload(&new_joint);
                self.joint = Some(new_joint);
                self.report.reconfigurations += 1;
                self.cfg.telemetry.event(
                    now,
                    "reconfiguration",
                    &[("total", Value::from(self.report.reconfigurations))],
                );
            }
        }
    }

    /// Run to quiescence or the horizon; returns the report.
    pub fn run(mut self) -> SimReport {
        if let Some(interval) = self.cfg.adaptation_interval {
            assert!(
                interval > Nanos::ZERO,
                "adaptation interval must be positive"
            );
            self.events.schedule(interval, (Event::ControlTick, None));
        }
        if let Some(interval) = self.cfg.sample_interval {
            assert!(interval > Nanos::ZERO, "sample interval must be positive");
            self.events.schedule(interval, (Event::Sample, None));
        }
        while let Some(t) = self.events.peek_time() {
            if t > self.cfg.horizon {
                break;
            }
            if self.all_traffic_done() {
                break;
            }
            let (now, (ev, packet)) = self.events.pop().expect("peeked");
            self.report.events += 1;
            self.report.end_time = now;
            let _dispatch = self.dispatch_prof.time();
            match ev {
                Event::FlowStart(flow) => {
                    if self.cfg.tracer.sampled(flow.0) {
                        if let FlowState::Reliable { sender, .. } = &self.flows[flow.index()] {
                            let def = *sender.def();
                            self.cfg.tracer.record(TraceRecord::new(
                                now,
                                flow.0,
                                0,
                                def.tenant.0,
                                TraceKind::FlowStart { size: def.size },
                            ));
                        }
                    }
                    let sends = match &mut self.flows[flow.index()] {
                        FlowState::Reliable { sender, .. } => sender.on_start(now),
                        FlowState::Cbr { .. } => unreachable!("FlowStart on CBR"),
                    };
                    for req in sends {
                        self.send_data(flow, req, 0, now);
                    }
                }
                Event::CbrEmit(flow) => self.emit_cbr(flow, now),
                Event::PortFree { node, port } => {
                    self.ports[node.index()][port].busy = false;
                    self.try_transmit(node, port, now);
                }
                Event::Arrive { node } => {
                    let p = self.arena.take(packet.expect("Arrive carries a packet"));
                    self.on_arrive(node, p, now);
                }
                Event::Timeout { flow, seq, attempt } => {
                    let req = match &mut self.flows[flow.index()] {
                        FlowState::Reliable { sender, .. } => sender.on_timeout(seq, now),
                        FlowState::Cbr { .. } => None,
                    };
                    if let Some(req) = req {
                        self.send_data(flow, req, attempt + 1, now);
                    }
                }
                Event::ControlTick => {
                    self.control_tick(now);
                    let interval = self.cfg.adaptation_interval.expect("tick implies interval");
                    if now + interval <= self.cfg.horizon {
                        self.events
                            .schedule(now + interval, (Event::ControlTick, None));
                    }
                }
                Event::Sample => {
                    for (&tenant, bytes) in self.window_bytes.iter_mut() {
                        if *bytes > 0 {
                            self.report.samples.push((now, tenant, *bytes));
                            *bytes = 0;
                        }
                    }
                    let interval = self.cfg.sample_interval.expect("tick implies interval");
                    if now + interval <= self.cfg.horizon {
                        self.events.schedule(now + interval, (Event::Sample, None));
                    }
                }
            }
        }
        // Flush the final partial sampling window so the series sums to
        // the delivered bytes.
        if self.cfg.sample_interval.is_some() {
            let at = self.report.end_time;
            for (&tenant, bytes) in self.window_bytes.iter_mut() {
                if *bytes > 0 {
                    self.report.samples.push((at, tenant, *bytes));
                    *bytes = 0;
                }
            }
        }
        self.report.incomplete_flows = self.reliable_total - self.reliable_done;
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvisor_ranking::PFabric;
    use qvisor_sim::gbps;
    use qvisor_topology::Dumbbell;
    use qvisor_transport::SizeBucket;

    fn dumbbell() -> Dumbbell {
        Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(1))
    }

    fn base_cfg() -> SimConfig {
        SimConfig {
            horizon: Nanos::from_secs(2),
            ..SimConfig::default()
        }
    }

    #[test]
    fn single_flow_completes_with_sane_fct() {
        let d = dumbbell();
        let mut sim = Simulation::new(d.topology.clone(), base_cfg()).unwrap();
        sim.register_rank_fn(TenantId(1), Box::new(PFabric::default_datacenter()));
        sim.add_flow(NewFlow::new(
            TenantId(1),
            d.senders[0],
            d.receivers[0],
            150_000, // ~103 packets
            Nanos::ZERO,
        ));
        let r = sim.run();
        assert_eq!(r.incomplete_flows, 0);
        assert_eq!(r.fct.count(None), 1);
        let fct = r.fct.mean_fct_ms(None, SizeBucket::ALL).unwrap();
        // Ideal: 150 KB at 1 Gbps ≈ 1.2 ms plus RTTs; must be close.
        assert!(
            (1.0..3.0).contains(&fct),
            "FCT {fct} ms outside sane bounds"
        );
        let t = r.tenant(TenantId(1));
        assert_eq!(t.delivered_bytes, 150_000);
        // pFabric's remaining-size ranks let an elephant's early packets
        // starve behind its own later packets until a timeout refreshes
        // them; a couple of stale duplicates may be priority-dropped.
        assert!(t.dropped_pkts <= 3, "drops {}", t.dropped_pkts);
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = || {
            let d = dumbbell();
            let mut sim = Simulation::new(d.topology.clone(), base_cfg()).unwrap();
            sim.register_rank_fn(TenantId(1), Box::new(PFabric::default_datacenter()));
            for i in 0..8 {
                sim.add_flow(NewFlow::new(
                    TenantId(1),
                    d.senders[i % 2],
                    d.receivers[(i + 1) % 2],
                    20_000 + i as u64 * 7_000,
                    Nanos::from_micros(i as u64 * 13),
                ));
            }
            let r = sim.run();
            (
                r.events,
                r.end_time,
                r.fct.mean_fct_ms(None, SizeBucket::ALL),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn congestion_drops_and_recovers() {
        // Two senders at 1 Gbps into a 0.5 Gbps bottleneck: drops must
        // occur, yet every flow completes via retransmission.
        let d = Dumbbell::build(2, gbps(1), 500_000_000, Nanos::from_micros(1));
        let mut sim = Simulation::new(d.topology.clone(), base_cfg()).unwrap();
        sim.register_rank_fn(TenantId(1), Box::new(PFabric::default_datacenter()));
        for i in 0..2 {
            sim.add_flow(NewFlow::new(
                TenantId(1),
                d.senders[i],
                d.receivers[i],
                400_000,
                Nanos::ZERO,
            ));
        }
        let r = sim.run();
        assert_eq!(r.incomplete_flows, 0);
        let t = r.tenant(TenantId(1));
        assert!(t.dropped_pkts > 0, "bottleneck must drop");
        assert_eq!(t.delivered_bytes, 800_000);
    }

    #[test]
    fn random_loss_is_survivable() {
        let d = dumbbell();
        let cfg = SimConfig {
            random_loss: 0.05,
            ..base_cfg()
        };
        let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
        sim.add_flow(NewFlow::new(
            TenantId(1),
            d.senders[0],
            d.receivers[0],
            100_000,
            Nanos::ZERO,
        ));
        let r = sim.run();
        assert_eq!(r.incomplete_flows, 0);
        assert!(r.random_losses > 0, "5% loss over ~140 packets");
    }

    #[test]
    fn cbr_stream_delivers_and_tracks_deadlines() {
        let d = dumbbell();
        let mut sim = Simulation::new(d.topology.clone(), base_cfg()).unwrap();
        sim.add_cbr(NewCbr {
            tenant: TenantId(2),
            src: d.senders[0],
            dst: d.receivers[0],
            rate_bps: 100_000_000,
            pkt_size: 1_500,
            start: Nanos::ZERO,
            stop: Nanos::from_millis(1),
            deadline_offset: Nanos::from_micros(200),
        });
        let r = sim.run();
        let t = r.tenant(TenantId(2));
        // 100 Mbps, 1500 B -> one packet per 120 us -> 9 packets in 1 ms
        // (t=0 inclusive), all delivered well within 200 us on an idle path.
        assert!(t.delivered_pkts >= 8, "got {}", t.delivered_pkts);
        assert_eq!(t.deadline_missed, 0);
        assert_eq!(t.deadline_hit_rate(), Some(1.0));
    }

    #[test]
    fn pifo_prioritizes_small_flow_under_contention() {
        // One elephant and one mouse share a bottleneck; with pFabric ranks
        // on a PIFO, the mouse's FCT must be near-ideal.
        let d = Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(1));
        let mut sim = Simulation::new(d.topology.clone(), base_cfg()).unwrap();
        sim.register_rank_fn(TenantId(1), Box::new(PFabric::default_datacenter()));
        // Elephant from sender 0, mouse from sender 1, same receiver.
        sim.add_flow(NewFlow::new(
            TenantId(1),
            d.senders[0],
            d.receivers[0],
            5_000_000,
            Nanos::ZERO,
        ));
        sim.add_flow(NewFlow::new(
            TenantId(1),
            d.senders[1],
            d.receivers[0],
            20_000,
            Nanos::from_millis(5), // arrives mid-elephant
        ));
        let r = sim.run();
        assert_eq!(r.incomplete_flows, 0);
        let small = r.fct.mean_fct_ms(None, SizeBucket::SMALL).unwrap();
        // Ideal ~0.2 ms; generous bound that FIFO would blow through.
        assert!(small < 1.0, "mouse FCT {small} ms too slow under PIFO");
    }

    #[test]
    fn telemetry_observes_the_run() {
        let d = dumbbell();
        let telemetry = qvisor_telemetry::Telemetry::enabled();
        let cfg = SimConfig {
            telemetry: telemetry.clone(),
            ..base_cfg()
        };
        let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
        sim.register_rank_fn(TenantId(1), Box::new(PFabric::default_datacenter()));
        sim.add_flow(NewFlow::new(
            TenantId(1),
            d.senders[0],
            d.receivers[0],
            150_000,
            Nanos::ZERO,
        ));
        let r = sim.run();
        assert_eq!(r.incomplete_flows, 0);
        // Per-tenant counters agree with the report.
        let t1 = [("tenant", "T1")];
        assert_eq!(
            telemetry.counter("net_sent_pkts", &t1).get(),
            r.tenant(TenantId(1)).sent_pkts
        );
        assert_eq!(telemetry.counter("net_delivered_bytes", &t1).get(), 150_000);
        assert_eq!(telemetry.histogram("net_fct_ns", &t1).count(), 1);
        // Port queues and links reported through the same registry, and the
        // export round-trips through the report parser.
        let jsonl = telemetry.export_jsonl();
        assert!(jsonl.contains("sched_dequeued_pkts"));
        assert!(jsonl.contains("sched_sojourn_ns"));
        assert!(jsonl.contains("net_link_tx_bytes"));
        assert!(jsonl.contains("flow_complete"));
        let export = qvisor_telemetry::report::parse(&jsonl).unwrap();
        assert!(!export.counters.is_empty());
    }

    #[test]
    fn rejects_non_host_endpoints() {
        let d = dumbbell();
        let mut sim = Simulation::new(d.topology.clone(), base_cfg()).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.add_flow(NewFlow::new(
                TenantId(1),
                d.left_switch,
                d.receivers[0],
                1_000,
                Nanos::ZERO,
            ));
        }));
        assert!(result.is_err());
    }
}
