//! Deterministic discrete-event queue.
//!
//! Events scheduled for the same instant pop in the order they were pushed
//! (FIFO tie-break via a monotone sequence number), so simulations are
//! reproducible regardless of the backing structure's internals.
//!
//! Two interchangeable cores implement that contract:
//!
//! * [`EventCore::Wheel`] — a hierarchical timing wheel
//!   (`crate::wheel`): O(1) amortised schedule/pop, the default. This is
//!   the hot path of every packet-level experiment.
//! * [`EventCore::Heap`] — the original `BinaryHeap` on `(at, seq)`:
//!   O(log n), kept alive as the *differential oracle*. The test suite
//!   drives both cores with identical traces and asserts identical
//!   behaviour (see `tests/event_core_differential.rs` and TESTING.md).
//!
//! Compiling `qvisor-sim` with the `heap-core` feature flips the default
//! core to the heap, so the whole workspace test suite can be re-run
//! against the oracle without touching call sites.

use crate::time::Nanos;
use crate::wheel::TimingWheel;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which data structure backs an [`EventQueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventCore {
    /// Hierarchical timing wheel with an overflow heap — O(1) amortised,
    /// the production core.
    Wheel,
    /// Comparison-based binary heap — the reference implementation used
    /// as the differential-testing oracle.
    Heap,
}

impl Default for EventCore {
    #[cfg(not(feature = "heap-core"))]
    fn default() -> EventCore {
        EventCore::Wheel
    }
    #[cfg(feature = "heap-core")]
    fn default() -> EventCore {
        EventCore::Heap
    }
}

struct Entry<E> {
    at: Nanos,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest (then lowest
        // seq) first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

enum Core<E> {
    Wheel(TimingWheel<E>),
    Heap(BinaryHeap<Entry<E>>),
}

/// A time-ordered event queue driving a discrete-event simulation.
///
/// The queue tracks the current simulation clock: [`EventQueue::pop`]
/// advances it to the popped event's timestamp, and scheduling an event in
/// the past is a logic error that panics.
pub struct EventQueue<E> {
    core: Core<E>,
    seq: u64,
    now: Nanos,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero, on the default core
    /// (the timing wheel, unless built with the `heap-core` feature).
    pub fn new() -> Self {
        Self::with_core(EventCore::default())
    }

    /// An empty queue on an explicitly chosen core. Both cores implement
    /// the exact same `(time, seq)` total order; tests exploit this to
    /// diff them against each other.
    pub fn with_core(core: EventCore) -> Self {
        EventQueue {
            core: match core {
                EventCore::Wheel => Core::Wheel(TimingWheel::new()),
                EventCore::Heap => Core::Heap(BinaryHeap::new()),
            },
            seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// Which core backs this queue.
    pub fn core(&self) -> EventCore {
        match self.core {
            Core::Wheel(_) => EventCore::Wheel,
            Core::Heap(_) => EventCore::Heap,
        }
    }

    /// Current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock — causality violation.
    pub fn schedule(&mut self, at: Nanos, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        match &mut self.core {
            Core::Wheel(w) => w.push(at.0, self.seq, event),
            Core::Heap(h) => h.push(Entry {
                at,
                seq: self.seq,
                event,
            }),
        }
        self.seq += 1;
    }

    /// Schedule `event` at `delay` after the current clock.
    ///
    /// The target time saturates at [`Nanos::MAX`] instead of wrapping, so
    /// "infinite" delays park the event at the end of time rather than
    /// panicking (or worse, firing in the past).
    pub fn schedule_in(&mut self, delay: Nanos, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        let (at, event) = match &mut self.core {
            Core::Wheel(w) => {
                let (at, _, event) = w.pop()?;
                (Nanos(at), event)
            }
            Core::Heap(h) => {
                let entry = h.pop()?;
                (entry.at, entry.event)
            }
        };
        debug_assert!(at >= self.now);
        self.now = at;
        Some((at, event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Nanos> {
        match &self.core {
            Core::Wheel(w) => w.peek_time().map(Nanos),
            Core::Heap(h) => h.peek().map(|e| e.at),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.core {
            Core::Wheel(w) => w.len(),
            Core::Heap(h) => h.len(),
        }
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every contract test runs on both cores.
    fn on_both(check: impl Fn(EventQueue<&'static str>)) {
        check(EventQueue::with_core(EventCore::Wheel));
        check(EventQueue::with_core(EventCore::Heap));
    }

    #[test]
    fn pops_in_time_order() {
        on_both(|mut q| {
            q.schedule(Nanos(30), "c");
            q.schedule(Nanos(10), "a");
            q.schedule(Nanos(20), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"]);
        });
    }

    #[test]
    fn ties_break_fifo() {
        on_both(|mut q| {
            for label in ["first", "second", "third"] {
                q.schedule(Nanos(5), label);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["first", "second", "third"]);
        });
    }

    #[test]
    fn clock_advances_on_pop() {
        on_both(|mut q| {
            q.schedule(Nanos(100), "e");
            assert_eq!(q.now(), Nanos::ZERO);
            q.pop();
            assert_eq!(q.now(), Nanos(100));
        });
    }

    #[test]
    fn schedule_in_is_relative() {
        on_both(|mut q| {
            q.schedule(Nanos(50), "a");
            q.pop();
            q.schedule_in(Nanos(25), "b");
            assert_eq!(q.peek_time(), Some(Nanos(75)));
        });
    }

    #[test]
    fn schedule_in_saturates_instead_of_wrapping() {
        // Regression: `now + delay` used to wrap around u64 and panic as
        // "scheduled in the past". A near-MAX delay must saturate to
        // Nanos::MAX and stay last in the total order.
        on_both(|mut q| {
            q.schedule(Nanos(100), "first");
            q.pop();
            q.schedule_in(Nanos::MAX, "horizon");
            q.schedule_in(Nanos(1), "soon");
            assert_eq!(q.peek_time(), Some(Nanos(101)));
            assert_eq!(q.pop(), Some((Nanos(101), "soon")));
            assert_eq!(q.pop(), Some((Nanos::MAX, "horizon")));
        });
    }

    #[test]
    fn events_at_nanos_max_keep_fifo_order() {
        on_both(|mut q| {
            q.schedule_in(Nanos::MAX, "a");
            q.schedule(Nanos::MAX, "b");
            assert_eq!(q.pop(), Some((Nanos::MAX, "a")));
            assert_eq!(q.pop(), Some((Nanos::MAX, "b")));
        });
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), ());
        q.pop();
        q.schedule(Nanos(5), ());
    }

    #[test]
    fn len_and_empty() {
        on_both(|mut q| {
            assert!(q.is_empty());
            q.schedule(Nanos(1), "e");
            assert_eq!(q.len(), 1);
            q.pop();
            assert!(q.is_empty());
        });
    }

    #[test]
    fn same_time_interleaved_push_pop_stays_fifo() {
        on_both(|mut q| {
            q.schedule(Nanos(10), "1");
            q.schedule(Nanos(10), "2");
            assert_eq!(q.pop().unwrap().1, "1");
            q.schedule(Nanos(10), "3");
            assert_eq!(q.pop().unwrap().1, "2");
            assert_eq!(q.pop().unwrap().1, "3");
        });
    }

    #[test]
    fn default_core_honours_feature_flag() {
        let q: EventQueue<u8> = EventQueue::new();
        let expect = if cfg!(feature = "heap-core") {
            EventCore::Heap
        } else {
            EventCore::Wheel
        };
        assert_eq!(q.core(), expect);
    }
}
