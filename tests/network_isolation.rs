//! Network-level guarantees: does the synthesized policy actually protect
//! tenants once packets flow through a congested fabric?

use qvisor::core::{SynthConfig, TenantSpec, UnknownTenantAction};
use qvisor::netsim::{
    NewCbr, NewFlow, QvisorSetup, SchedulerKind, SimConfig, SimReport, Simulation,
};
use qvisor::ranking::{Edf, PFabric, RankRange};
use qvisor::sim::{gbps, Nanos, TenantId};
use qvisor::topology::Dumbbell;
use qvisor::transport::SizeBucket;

const T1: TenantId = TenantId(1);
const T2: TenantId = TenantId(2);

/// Shared scenario: T1 sends short pFabric flows over a bottleneck that T2
/// floods with high-priority-looking EDF datagrams (tight deadlines =
/// near-zero raw ranks, which naively beat everything).
fn run(policy: Option<&str>, with_t2: bool) -> SimReport {
    let d = Dumbbell::build(4, gbps(1), gbps(1), Nanos::from_micros(1));
    let mut cfg = SimConfig {
        seed: 11,
        horizon: Nanos::from_millis(200),
        scheduler: SchedulerKind::Pifo,
        ..SimConfig::default()
    };
    if let Some(p) = policy {
        let specs = vec![
            TenantSpec::new(T1, "T1", "pFabric", RankRange::new(0, 200)).with_levels(64),
            TenantSpec::new(T2, "T2", "EDF", RankRange::new(0, 100)).with_levels(16),
        ];
        // Note the clash the paper describes (§2): raw EDF ranks (~100)
        // are numerically lower than most raw pFabric ranks (up to 200),
        // so naive sharing starves T1 — QVISOR must fix it.
        cfg.qvisor = Some(QvisorSetup {
            specs,
            policy: p.to_string(),
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope: Default::default(),
            monitor: None,
        });
    }
    let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(T1, Box::new(PFabric::new(1_000, 200)));
    sim.register_rank_fn(T2, Box::new(Edf::new(Nanos::from_micros(1), 100)));

    // T1: a train of 200 KB flows crossing the bottleneck (raw pFabric
    // ranks run up to 200).
    for i in 0..40u64 {
        sim.add_flow(NewFlow::new(
            T1,
            d.senders[(i % 2) as usize],
            d.receivers[(i % 2) as usize],
            200_000,
            Nanos::from_millis(2 * i),
        ));
    }
    // T2: two datagram floods with 100 us deadlines (raw ranks ~100,
    // numerically *better* than most of T1's packets).
    if with_t2 {
        for s in 2..4 {
            sim.add_cbr(NewCbr {
                tenant: T2,
                src: d.senders[s],
                dst: d.receivers[s],
                rate_bps: 350_000_000,
                pkt_size: 1_500,
                start: Nanos::ZERO,
                stop: Nanos::from_millis(45),
                deadline_offset: Nanos::from_micros(100),
            });
        }
    }
    sim.run()
}

fn t1_fct(r: &SimReport) -> f64 {
    r.fct.mean_fct_ms(Some(T1), SizeBucket::ALL).unwrap()
}

#[test]
fn strict_priority_isolates_t1_from_the_flood() {
    let ideal = run(None, false); // T1 alone
    let naive = run(None, true); // naive shared PIFO
    let qvisor = run(Some("T1 >> T2"), true); // strict isolation

    let (ideal, naive, qvisor) = (t1_fct(&ideal), t1_fct(&naive), t1_fct(&qvisor));
    // The naive PIFO lets T2's numerically-lower EDF ranks starve T1.
    assert!(
        naive > ideal * 1.5,
        "naive sharing should hurt T1: ideal {ideal:.3} ms, naive {naive:.3} ms"
    );
    // QVISOR's strict policy restores near-ideal FCTs.
    assert!(
        qvisor < ideal * 1.5,
        "QVISOR T1>>T2 should be near-ideal: ideal {ideal:.3} ms, qvisor {qvisor:.3} ms"
    );
    assert!(qvisor < naive, "isolation must beat naive sharing");
}

#[test]
fn inverted_policy_prioritizes_t2_instead() {
    // With T2 >> T1 the flood is *supposed* to win: T1's FCT degrades
    // and T2's deadline hit rate goes to ~100%.
    let qv_t2_first = run(Some("T2 >> T1"), true);
    let qv_t1_first = run(Some("T1 >> T2"), true);
    assert!(t1_fct(&qv_t2_first) > t1_fct(&qv_t1_first));
    let hit = qv_t2_first.tenant(T2).deadline_hit_rate().unwrap();
    assert!(
        hit > 0.95,
        "prioritized T2 should meet deadlines, got {hit}"
    );
}

#[test]
fn all_flows_complete_under_every_policy() {
    for policy in [None, Some("T1 >> T2"), Some("T2 >> T1"), Some("T1 + T2")] {
        let r = run(policy, true);
        assert_eq!(
            r.incomplete_flows, 0,
            "reliable flows must finish under {policy:?}"
        );
        assert_eq!(r.fct.count(Some(T1)), 40);
    }
}
