//! Hierarchical PIFO trees (Sivaraman et al., SIGCOMM '16; the §5
//! "increasing specification expressivity" direction of the QVISOR paper).
//!
//! A PIFO tree schedules hierarchically: each internal node is a PIFO over
//! its *children*, each leaf a PIFO over packets. A packet enqueues with a
//! rank for every node on its root-to-leaf path; dequeue pops the root's
//! best child, recursing until a packet emerges. This expresses policies
//! flat PIFOs cannot, e.g. "fair-share between tenant groups, SRPT within
//! each" with per-group isolation of the fair shares.

use crate::queue::{Capacity, Enqueue, PacketQueue};
use qvisor_sim::{Nanos, Packet, Rank};
use std::collections::BTreeMap;

/// One step of a packet's path: the rank to use at that tree level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathStep {
    /// Child index to descend into (at the root: index into the root's
    /// children; and so on).
    pub child: usize,
    /// Rank for the PIFO at the *parent* of that child.
    pub rank: Rank,
}

/// A packet's full scheduling path: one step per tree level, ending at a
/// leaf, plus the rank within the leaf PIFO.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreePath {
    /// Steps from the root downwards.
    pub steps: Vec<PathStep>,
    /// Rank inside the leaf PIFO.
    pub leaf_rank: Rank,
}

/// Assigns a [`TreePath`] to each packet (the "scheduling transaction" of
/// the PIFO-tree model).
pub trait TreeClassifier {
    /// Path for `p`. Must match the tree's shape.
    fn classify(&mut self, p: &Packet) -> TreePath;
}

impl<F: FnMut(&Packet) -> TreePath> TreeClassifier for F {
    fn classify(&mut self, p: &Packet) -> TreePath {
        self(p)
    }
}

/// Tree shape: an internal node lists its children; a leaf holds packets.
#[derive(Clone, Debug)]
pub enum TreeShape {
    /// An internal scheduling node.
    Internal(Vec<TreeShape>),
    /// A leaf queue.
    Leaf,
}

#[derive(Debug)]
enum Node {
    Internal {
        children: Vec<usize>,
        /// PIFO over child *occurrences*: (rank, seq) -> child slot index.
        pifo: BTreeMap<(Rank, u64), usize>,
        seq: u64,
    },
    Leaf {
        pifo: BTreeMap<(Rank, u64), Packet>,
        seq: u64,
    },
}

/// A hierarchical PIFO scheduler.
///
/// The whole tree shares one byte budget with the same *priority-drop*
/// admission as the flat [`crate::PifoQueue`]: a full buffer evicts the
/// packets that would have dequeued *last*, never the arrival, unless the
/// arrival itself is last. "Last" is well defined despite the hierarchy
/// because the tree's total dequeue order is the root PIFO's entry order —
/// each root pop emits exactly one packet — so the back of the root PIFO,
/// followed down through the back of each level, is the back of the whole
/// tree. Rank ties at the root keep residents (they were enqueued first).
///
/// The classifier runs for every offered packet — the scheduling
/// transaction computes ranks *before* admission — so stateful classifiers
/// (virtual-time counters) advance even for arrivals that end up rejected.
pub struct PifoTree<C: TreeClassifier> {
    nodes: Vec<Node>,
    root: usize,
    classifier: C,
    capacity: Capacity,
    bytes: u64,
    len: usize,
}

impl<C: TreeClassifier> PifoTree<C> {
    /// Build a tree of `shape` with `classifier` assigning paths.
    pub fn new(shape: &TreeShape, classifier: C, capacity: Capacity) -> PifoTree<C> {
        let mut nodes = Vec::new();
        let root = Self::build(shape, &mut nodes);
        PifoTree {
            nodes,
            root,
            classifier,
            capacity,
            bytes: 0,
            len: 0,
        }
    }

    fn build(shape: &TreeShape, nodes: &mut Vec<Node>) -> usize {
        match shape {
            TreeShape::Leaf => {
                nodes.push(Node::Leaf {
                    pifo: BTreeMap::new(),
                    seq: 0,
                });
                nodes.len() - 1
            }
            TreeShape::Internal(children) => {
                let child_ids: Vec<usize> =
                    children.iter().map(|c| Self::build(c, nodes)).collect();
                nodes.push(Node::Internal {
                    children: child_ids,
                    pifo: BTreeMap::new(),
                    seq: 0,
                });
                nodes.len() - 1
            }
        }
    }

    /// Number of tree nodes (for tests).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Walk down, inserting a reference at each internal node and the
    /// packet at the leaf.
    fn insert(&mut self, path: &TreePath, p: Packet) {
        let mut at = self.root;
        for step in &path.steps {
            match &mut self.nodes[at] {
                Node::Internal {
                    children,
                    pifo,
                    seq,
                } => {
                    assert!(
                        step.child < children.len(),
                        "classifier path step out of range"
                    );
                    pifo.insert((step.rank, *seq), step.child);
                    *seq += 1;
                    at = children[step.child];
                }
                Node::Leaf { .. } => panic!("classifier path longer than tree depth"),
            }
        }
        match &mut self.nodes[at] {
            Node::Leaf { pifo, seq } => {
                self.bytes += p.size as u64;
                self.len += 1;
                pifo.insert((path.leaf_rank, *seq), p);
                *seq += 1;
            }
            Node::Internal { .. } => panic!("classifier path shorter than tree depth"),
        }
    }

    /// Root-level rank of the `k`-th entry from the back of the dequeue
    /// order (`k = 0` is the very last scheduling decision).
    fn rank_from_back(&self, k: usize) -> Option<Rank> {
        match &self.nodes[self.root] {
            Node::Internal { pifo, .. } => pifo.keys().rev().nth(k).map(|&(r, _)| r),
            Node::Leaf { pifo, .. } => pifo.keys().rev().nth(k).map(|&(r, _)| r),
        }
    }

    /// Size of the next victim from the back of `node`'s dequeue order,
    /// advancing the per-node cursors in `taken`. The `j`-th-from-back
    /// entry for a child corresponds to that child's `j`-th-from-back
    /// packet, so consuming entries strictly back-to-front keeps the
    /// cursors aligned with [`PifoTree::pop_back`]'s removal order.
    fn size_from_back(&self, node: usize, taken: &mut [usize]) -> Option<u64> {
        match &self.nodes[node] {
            Node::Internal { children, pifo, .. } => {
                let (_, &slot) = pifo.iter().rev().nth(taken[node])?;
                taken[node] += 1;
                self.size_from_back(children[slot], taken)
            }
            Node::Leaf { pifo, .. } => {
                let size = pifo
                    .iter()
                    .rev()
                    .nth(taken[node])
                    .map(|(_, p)| p.size as u64)?;
                taken[node] += 1;
                Some(size)
            }
        }
    }

    /// Remove and return the packet that would have dequeued last.
    fn pop_back(&mut self) -> Option<Packet> {
        if self.len == 0 {
            return None;
        }
        let mut at = self.root;
        loop {
            match &mut self.nodes[at] {
                Node::Internal { children, pifo, .. } => {
                    let (&key, _) = pifo.last_key_value()?;
                    let child = pifo.remove(&key).expect("key just observed");
                    at = children[child];
                }
                Node::Leaf { pifo, .. } => {
                    let (&key, _) = pifo.last_key_value()?;
                    let p = pifo.remove(&key).expect("key just observed");
                    self.bytes -= p.size as u64;
                    self.len -= 1;
                    return Some(p);
                }
            }
        }
    }
}

impl<C: TreeClassifier> PacketQueue for PifoTree<C> {
    fn enqueue(&mut self, p: Packet, _now: Nanos) -> Enqueue {
        let size = p.size as u64;
        let path = self.classifier.classify(&p);
        if self.capacity.fits(self.bytes, size) {
            self.insert(&path, p);
            return Enqueue::Accepted;
        }
        // Priority drop (mirroring `PifoQueue`): plan first, commit after.
        // Victims are taken from the back of the tree's dequeue order and
        // must be *strictly* after the arrival at the root level — rank
        // ties keep residents, which enqueued (hence dequeue) first. Only
        // if strictly-later residents free enough bytes is the arrival
        // admitted; otherwise it is the victim and the tree is untouched.
        let arrival_rank = match path.steps.first() {
            Some(step) => step.rank,
            None => path.leaf_rank,
        };
        let mut taken = vec![0usize; self.nodes.len()];
        let mut freed = 0u64;
        let mut victims = 0usize;
        while !self.capacity.fits(self.bytes - freed, size) {
            match self.rank_from_back(victims) {
                Some(rank) if rank > arrival_rank => {}
                _ => return Enqueue::Rejected(Box::new(p)),
            }
            freed += self
                .size_from_back(self.root, &mut taken)
                .expect("root entry just observed implies a packet");
            victims += 1;
        }
        let dropped: Vec<Packet> = (0..victims)
            .map(|_| self.pop_back().expect("planned victim exists"))
            .collect();
        self.insert(&path, p);
        Enqueue::AcceptedDropped(dropped)
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        if self.len == 0 {
            return None;
        }
        let mut at = self.root;
        loop {
            match &mut self.nodes[at] {
                Node::Internal { children, pifo, .. } => {
                    let (&key, _) = pifo.first_key_value()?;
                    let child = pifo.remove(&key).expect("key just observed");
                    at = children[child];
                }
                Node::Leaf { pifo, .. } => {
                    let (&key, _) = pifo.first_key_value()?;
                    let p = pifo.remove(&key).expect("key just observed");
                    self.bytes -= p.size as u64;
                    self.len -= 1;
                    return Some(p);
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn head_rank(&self) -> Option<Rank> {
        // The root's best entry rank (the tree's next scheduling decision).
        match &self.nodes[self.root] {
            Node::Internal { pifo, .. } => pifo.keys().next().map(|&(r, _)| r),
            Node::Leaf { pifo, .. } => pifo.keys().next().map(|&(r, _)| r),
        }
    }

    fn kind(&self) -> &'static str {
        "pifo_tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvisor_sim::{FlowId, NodeId, TenantId};

    fn pkt(tenant: u16, seq: u64, rank: Rank) -> Packet {
        let mut p = Packet::data(
            FlowId(tenant as u64),
            TenantId(tenant),
            seq,
            100,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        );
        p.txf_rank = rank;
        p
    }

    /// Two-tenant tree: root PIFO round-robins by a per-tenant virtual
    /// counter, leaves run SRPT within the tenant.
    fn two_tenant_tree() -> PifoTree<impl FnMut(&Packet) -> TreePath> {
        let shape = TreeShape::Internal(vec![TreeShape::Leaf, TreeShape::Leaf]);
        let mut counters = [0u64; 2];
        let classifier = move |p: &Packet| {
            let t = (p.tenant.0 - 1) as usize;
            counters[t] += 1;
            TreePath {
                steps: vec![PathStep {
                    child: t,
                    rank: counters[t], // per-tenant virtual time = fairness
                }],
                leaf_rank: p.txf_rank, // SRPT within the tenant
            }
        };
        PifoTree::new(&shape, classifier, Capacity::UNBOUNDED)
    }

    #[test]
    fn tree_shape_builds() {
        let t = two_tenant_tree();
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn fair_across_tenants_srpt_within() {
        let mut t = two_tenant_tree();
        // Tenant 1 floods first with big ranks; tenant 2 arrives later.
        for i in 0..4 {
            t.enqueue(pkt(1, i, 100 - i), Nanos::ZERO);
        }
        for i in 0..4 {
            t.enqueue(pkt(2, 10 + i, 50 - i), Nanos::ZERO);
        }
        let order: Vec<u16> = std::iter::from_fn(|| t.dequeue(Nanos::ZERO))
            .map(|p| p.tenant.0)
            .collect();
        // Root fairness interleaves tenants 1:1 despite tenant 1's head
        // start in arrival order.
        assert_eq!(order, vec![1, 2, 1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn leaf_order_is_rank_order() {
        let mut t = two_tenant_tree();
        for (i, r) in [9u64, 1, 5].into_iter().enumerate() {
            t.enqueue(pkt(1, i as u64, r), Nanos::ZERO);
        }
        let ranks: Vec<Rank> = std::iter::from_fn(|| t.dequeue(Nanos::ZERO))
            .map(|p| p.txf_rank)
            .collect();
        assert_eq!(ranks, vec![1, 5, 9], "SRPT within the tenant leaf");
    }

    #[test]
    fn root_rank_ties_keep_residents() {
        // Constant root rank: the arrival always ties the residents at the
        // root, so a full buffer rejects it (FIFO-fair, like the flat
        // PIFO's tie rule) and leaves the tree untouched.
        let shape = TreeShape::Internal(vec![TreeShape::Leaf]);
        let classifier = |p: &Packet| TreePath {
            steps: vec![PathStep { child: 0, rank: 0 }],
            leaf_rank: p.txf_rank,
        };
        let mut t = PifoTree::new(&shape, classifier, Capacity::bytes(200));
        assert!(t.enqueue(pkt(1, 0, 1), Nanos::ZERO).accepted());
        assert!(t.enqueue(pkt(1, 1, 2), Nanos::ZERO).accepted());
        assert!(!t.enqueue(pkt(1, 2, 0), Nanos::ZERO).accepted());
        assert_eq!(t.len(), 2);
        assert_eq!(t.bytes(), 200);
    }

    #[test]
    fn full_tree_evicts_last_to_dequeue() {
        // Two-tenant fair tree, buffer of 4 packets. Tenant 1 fills the
        // whole buffer; a tenant-2 arrival (virtual time far behind) must
        // evict tenant 1's *last-to-dequeue* packet — the one with the
        // worst leaf rank — rather than being tail-dropped.
        let mut t = {
            let shape = TreeShape::Internal(vec![TreeShape::Leaf, TreeShape::Leaf]);
            let mut counters = [0u64; 2];
            let classifier = move |p: &Packet| {
                let c = (p.tenant.0 - 1) as usize;
                counters[c] += 1;
                TreePath {
                    steps: vec![PathStep {
                        child: c,
                        rank: counters[c],
                    }],
                    leaf_rank: p.txf_rank,
                }
            };
            PifoTree::new(&shape, classifier, Capacity::bytes(400))
        };
        for (seq, rank) in [(0u64, 5u64), (1, 9), (2, 3), (3, 7)] {
            assert!(t.enqueue(pkt(1, seq, rank), Nanos::ZERO).accepted());
        }
        let outcome = t.enqueue(pkt(2, 10, 1), Nanos::ZERO);
        assert!(outcome.accepted());
        let dropped = outcome.dropped();
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].seq, 1, "worst-ranked tenant-1 packet evicted");
        assert_eq!(t.len(), 4);
        // Tenant 1 cannot evict its own older packets: its next arrival has
        // the highest virtual time of its class, i.e. it *is* the back.
        assert!(!t.enqueue(pkt(1, 4, 1), Nanos::ZERO).accepted());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn eviction_plan_rejects_without_partial_eviction() {
        // The first victim from the back is strictly later than the
        // arrival, but freeing it is not enough and the next candidate
        // ties — the arrival must be rejected with NO evictions.
        let shape = TreeShape::Internal(vec![TreeShape::Leaf, TreeShape::Leaf]);
        let classifier = |p: &Packet| TreePath {
            steps: vec![PathStep {
                child: (p.tenant.0 - 1) as usize,
                rank: p.txf_rank,
            }],
            leaf_rank: p.txf_rank,
        };
        let mut t = PifoTree::new(&shape, classifier, Capacity::bytes(200));
        assert!(t.enqueue(pkt(1, 0, 4), Nanos::ZERO).accepted());
        assert!(t.enqueue(pkt(2, 1, 9), Nanos::ZERO).accepted());
        // 200-byte arrival at rank 4: victim rank 9 frees 100 bytes, the
        // next candidate (rank 4) ties the arrival.
        let mut big = pkt(1, 2, 4);
        big.size = 200;
        assert!(!t.enqueue(big, Nanos::ZERO).accepted());
        assert_eq!(t.len(), 2);
        assert_eq!(t.bytes(), 200);
    }

    #[test]
    fn three_level_hierarchy() {
        // Root: strict by group rank; groups: two leaves each.
        let shape = TreeShape::Internal(vec![
            TreeShape::Internal(vec![TreeShape::Leaf, TreeShape::Leaf]),
            TreeShape::Internal(vec![TreeShape::Leaf, TreeShape::Leaf]),
        ]);
        // Tenants 1,2 -> group 0; tenants 3,4 -> group 1 (lower priority).
        let classifier = |p: &Packet| {
            let t = p.tenant.0 as usize - 1;
            TreePath {
                steps: vec![
                    PathStep {
                        child: t / 2,
                        rank: (t / 2) as u64, // strict: group 0 first
                    },
                    PathStep {
                        child: t % 2,
                        rank: p.txf_rank,
                    },
                ],
                leaf_rank: p.txf_rank,
            }
        };
        let mut tree = PifoTree::new(&shape, classifier, Capacity::UNBOUNDED);
        assert_eq!(tree.node_count(), 7);
        tree.enqueue(pkt(3, 0, 1), Nanos::ZERO);
        tree.enqueue(pkt(1, 1, 9), Nanos::ZERO);
        tree.enqueue(pkt(4, 2, 2), Nanos::ZERO);
        tree.enqueue(pkt(2, 3, 5), Nanos::ZERO);
        let order: Vec<u16> = std::iter::from_fn(|| tree.dequeue(Nanos::ZERO))
            .map(|p| p.tenant.0)
            .collect();
        // Group 0 (tenants 1,2) strictly first — by rank within (2's 5
        // beats 1's 9) — then group 1 by rank (3's 1 beats 4's 2).
        assert_eq!(order, vec![2, 1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "path step out of range")]
    fn bad_classifier_is_caught() {
        let shape = TreeShape::Internal(vec![TreeShape::Leaf]);
        let classifier = |_: &Packet| TreePath {
            steps: vec![PathStep { child: 7, rank: 0 }],
            leaf_rank: 0,
        };
        let mut t = PifoTree::new(&shape, classifier, Capacity::UNBOUNDED);
        t.enqueue(pkt(1, 0, 0), Nanos::ZERO);
    }
}
