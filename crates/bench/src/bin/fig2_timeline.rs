//! Regenerates the paper's Fig. 2 scenario quantitatively: a data-center
//! workload timeline where tenants T1 (interactive/pFabric) and T2
//! (deadline/EDF) are active until `t1`, then go idle while T3
//! (background/FQ) starts. The runtime monitor detects the shift, the
//! adapter re-synthesizes, and we report:
//!
//! * the active set and per-tenant bands at each control-plane tick;
//! * rank-space compaction (joint span before vs after reclamation) —
//!   fewer ranks means fewer strict-priority queues needed on a commodity
//!   switch (§3.4);
//! * re-synthesis latency (the "event-driven controller" cost, §2).
//!
//! Usage: cargo run -p qvisor-bench --release --bin fig2_timeline

use qvisor_core::{
    analyze, synthesize, MonitorConfig, Policy, RuntimeAdapter, RuntimeMonitor, SynthConfig,
    TenantSpec, ViolationAction,
};
use qvisor_ranking::{RankFnSpec, RankRange};
use qvisor_sim::{FlowId, Nanos, NodeId, Packet, SimRng, TenantId};
use std::time::Instant;

fn mk_packet(tenant: u16, rank: u64, at: Nanos) -> Packet {
    Packet::data(
        FlowId(tenant as u64),
        TenantId(tenant),
        0,
        1_500,
        NodeId(0),
        NodeId(1),
        rank,
        at,
    )
}

fn main() {
    control_plane_timeline();
    println!("\n=== in-network timeline (2x4-host leaf-spine, live adaptation) ===");
    in_network_timeline();
}

/// Part 1: the monitor/adapter state machine driven directly with
/// synthetic packet observations (no simulator in the loop).
fn control_plane_timeline() {
    let specs = vec![
        TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(0, 100_000)).with_levels(256),
        TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(0, 10_000)).with_levels(64),
        TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(0, 1_000)).with_levels(32),
    ];
    let policy = Policy::parse("T1 + T2 >> T3").unwrap();
    let synth_cfg = SynthConfig::default();
    let monitor_cfg = MonitorConfig {
        violation_action: ViolationAction::Clamp,
        idle_after: Nanos::from_millis(5),
        drift_ratio: 4.0,
    };

    let t0 = Instant::now();
    let joint = synthesize(&specs, &policy, synth_cfg).unwrap();
    let initial_synth = t0.elapsed();
    let mut monitor = RuntimeMonitor::new(&specs, monitor_cfg);
    let mut adapter = RuntimeAdapter::new(specs.clone(), policy, synth_cfg, monitor_cfg);

    println!("t=0        deploy over {{T1, T2, T3}} (policy T1 + T2 >> T3)");
    println!(
        "           joint span {}, synth {:?}",
        joint.output_span(),
        initial_synth
    );
    let report = analyze(&joint);
    assert!(report.all_guarantees_hold());

    // Timeline: packets observed by the monitor, with control-plane ticks
    // interleaved causally. Phase A (t < t1): T1 + T2 active.
    let mut rng = SimRng::seed_from(1);
    let t1_moment = Nanos::from_millis(10);
    for i in 0..20_000u64 {
        let at = Nanos::from_micros(i / 2);
        let (tenant, rank) = if i % 2 == 0 {
            (1u16, rng.below(90_000))
        } else {
            (2u16, rng.below(9_000))
        };
        monitor.observe(&mut mk_packet(tenant, rank, at), at);
    }

    // Control-plane tick mid-phase-A. T3 has not transmitted yet, so a
    // proposal shrinking the active set to {T1, T2} is the expected
    // steady-state (its bands would be reclaimed); we keep the full
    // deployment because T3 is *contracted*, just idle — a policy choice.
    let tick_a = Nanos::from_millis(9);
    match adapter.propose(&monitor, tick_a) {
        Some(a) => println!(
            "t={tick_a}   proposal: active {:?} (T3 contracted but idle; deferred)",
            a.active
        ),
        None => println!("t={tick_a}   no change"),
    }

    // Phase B (t >= t1): T1/T2 stop, T3 starts.
    for i in 0..20_000u64 {
        let at = t1_moment + Nanos::from_micros(i / 2);
        monitor.observe(&mut mk_packet(3, rng.below(1_000), at), at);
    }

    // Control-plane tick after t1 once T1/T2 have been idle past the
    // window while T3 is still transmitting.
    let tick_b = t1_moment + Nanos::from_millis(12);
    let proposal = adapter
        .propose(&monitor, tick_b)
        .expect("activity shift must be detected");
    println!(
        "t={tick_b}  proposal: active {:?}, tightened {:?}",
        proposal.active, proposal.tightened
    );
    let t1 = Instant::now();
    let new_joint = adapter
        .apply(&proposal)
        .expect("re-synthesis succeeds")
        .expect("T3 remains");
    let resynth = t1.elapsed();
    let report = analyze(&new_joint);
    assert!(report.all_guarantees_hold());

    let before = joint.output_span();
    let after = new_joint.output_span();
    println!(
        "           re-synthesized in {resynth:?}; joint span {before} -> {after} \
         ({}x compaction)",
        before.width() / after.width().max(1)
    );
    println!(
        "           T3 best rank: {} -> {}",
        joint.chain(TenantId(3)).unwrap().apply(0),
        new_joint.chain(TenantId(3)).unwrap().apply(0)
    );
    println!("\nFig. 2's t1 transition handled: idle bands reclaimed, guarantees re-verified.");
}

/// Part 2: the same timeline *in the network* — per-tenant goodput over
/// time with live adaptation on, reproducing Fig. 2's traffic-volume
/// curves from a declarative scenario.
fn in_network_timeline() {
    use qvisor_bench::harness::run_one;
    use qvisor_netsim::scenario::{
        CbrDecl, FlowDecl, MonitorSpec, QvisorSpec, ScenarioSpec, SchedulerSpec, ScopeSpec,
        SimSpec, TenantDecl, TimeRef, TopologySpec, ViolationSpec, WorkloadSpec,
    };
    use qvisor_topology::LeafSpineConfig;

    let fabric = LeafSpineConfig::small();
    let t1_moment = Nanos::from_millis(30);

    // Phase A (t < t1): T1 sends short flows, T2 a CBR stream; phase B
    // (t >= t1): T3 background elephants. Host indices follow the
    // leaf-spine's rack-major canonical host order.
    let t1_flows = (0..40u64)
        .map(|i| FlowDecl {
            tenant: 1,
            src_host: (i % 4) as usize,
            dst_host: 4 + (i % 4) as usize,
            size: 200_000,
            start_ns: Nanos::from_micros(600 * i).as_nanos(),
            deadline_ns: None,
            weight: 1,
        })
        .collect();
    let t2_stream = CbrDecl {
        tenant: 2,
        src_host: 1,
        dst_host: 6,
        rate_bps: 300_000_000,
        pkt_size: 1_500,
        start_ns: 0,
        stop: TimeRef::At(t1_moment.as_nanos()),
        deadline_offset_ns: Nanos::from_micros(500).as_nanos(),
    };
    let t3_flows = (0..2u64)
        .map(|i| FlowDecl {
            tenant: 3,
            src_host: (2 * i) as usize,
            dst_host: (5 + 2 * i) as usize,
            size: 2_000_000,
            start_ns: (t1_moment + Nanos::from_millis(i)).as_nanos(),
            deadline_ns: None,
            weight: 1,
        })
        .collect();

    let tenant = |id: u16, name: &str, algorithm: &str, rank_max: u64, levels: u64| TenantDecl {
        id,
        name: name.to_string(),
        algorithm: algorithm.to_string(),
        rank_min: 0,
        rank_max,
        levels: Some(levels),
    };
    let spec = ScenarioSpec {
        name: "fig2-in-network".to_string(),
        seed: 4,
        topology: TopologySpec::LeafSpine {
            leaves: fabric.leaves,
            spines: fabric.spines,
            hosts_per_leaf: fabric.hosts_per_leaf,
            access_bps: fabric.access_bps,
            fabric_bps: fabric.fabric_bps,
            access_delay_ns: fabric.access_delay.as_nanos(),
            fabric_delay_ns: fabric.fabric_delay.as_nanos(),
        },
        sim: SimSpec {
            horizon: TimeRef::At(Nanos::from_millis(60).as_nanos()),
            sample_interval_ns: Some(Nanos::from_millis(5).as_nanos()),
            adaptation_interval_ns: Some(Nanos::from_millis(10).as_nanos()),
            ..SimSpec::default()
        },
        scheduler: SchedulerSpec::Pifo,
        host_scheduler: None,
        qvisor: Some(QvisorSpec {
            tenants: vec![
                tenant(1, "T1", "pFabric", 2_000, 128),
                tenant(2, "T2", "EDF", 500, 32),
                tenant(3, "T3", "FQ", 10_000, 32),
            ],
            policy: "T1 + T2 >> T3".to_string(),
            unknown_drop: false,
            scope: ScopeSpec::Everywhere,
            monitor: Some(MonitorSpec {
                violation_action: ViolationSpec::Clamp,
                idle_after_ns: Nanos::from_millis(8).as_nanos(),
                drift_ratio: 4.0,
            }),
            synth: None,
        }),
        rank_fns: vec![
            (
                1,
                RankFnSpec::PFabric {
                    unit_bytes: 1_000,
                    max_rank: 2_000,
                },
            ),
            // Edf::default_datacenter(): 1 µs per rank unit, max rank 10k.
            (
                2,
                RankFnSpec::Edf {
                    unit_ns: 1_000,
                    max_rank: 10_000,
                },
            ),
            (
                3,
                RankFnSpec::ByteCountFq {
                    unit_bytes: 1_460,
                    max_rank: 10_000,
                },
            ),
        ],
        workloads: vec![
            WorkloadSpec::Flows { list: t1_flows },
            WorkloadSpec::Cbr {
                list: vec![t2_stream],
            },
            WorkloadSpec::Flows { list: t3_flows },
        ],
        alerts: Vec::new(),
    };

    let r = run_one(&spec, None, "fig2");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "t (ms)", "T1 (Mbps)", "T2 (Mbps)", "T3 (Mbps)"
    );
    let interval = Nanos::from_millis(5);
    let mut windows: std::collections::BTreeMap<u64, [f64; 3]> = Default::default();
    for t in [TenantId(1), TenantId(2), TenantId(3)] {
        for (at, bps) in r.goodput_series_bps(t, interval) {
            windows.entry(at.as_nanos()).or_insert([0.0; 3])[(t.0 - 1) as usize] = bps / 1e6;
        }
    }
    for (at, row) in &windows {
        println!(
            "{:>10.1} {:>12.0} {:>12.0} {:>12.0}",
            *at as f64 / 1e6,
            row[0],
            row[1],
            row[2]
        );
    }
    println!(
        "\nreconfigurations during the run: {} (T1/T2 bands reclaimed after t1=30ms)",
        r.reconfigurations
    );
}
