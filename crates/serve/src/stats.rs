//! Shared request/admission statistics: one registry behind both the
//! extended `status` response and the `metrics` Prometheus exposition.
//!
//! Session threads record per-op request counts; the control thread
//! records admission outcomes (accepts, plus rejects bucketed by QV-*
//! diagnostic code) and commit latency. The commit-latency histogram is
//! the one wall-clock measurement in the daemon's metrics — it times
//! real synthesis/verification work on the control thread and is only
//! ever exported through `status`/`metrics`, never fed back into any
//! deterministic state.

use std::collections::BTreeMap;
use std::sync::Mutex;

use qvisor_sim::json::Value;
use qvisor_telemetry::LogHistogram;

/// Rejections carrying no QV-* diagnostic (structural admission
/// failures: unknown tenant, bad id, empty rank range, ...) are
/// bucketed under this pseudo-code.
pub const STRUCTURAL_CODE: &str = "QV-STRUCTURAL";

/// Thread-shared daemon statistics. Cheap uncontended mutex: every
/// recording is a handful of map bumps, far from the request hot path's
/// synthesis work.
#[derive(Debug, Default)]
pub struct ServeStats {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    requests: BTreeMap<String, u64>,
    accepted: u64,
    rejected: u64,
    rejected_by_code: BTreeMap<String, u64>,
    commit_latency_ns: LogHistogram,
}

impl ServeStats {
    /// Count one request of operation `op` (`"invalid"` for lines that
    /// fail to parse).
    pub fn record_op(&self, op: &str) {
        let mut inner = self.inner.lock().expect("stats poisoned");
        *inner.requests.entry(op.to_string()).or_insert(0) += 1;
    }

    /// Classify one `submit-policy` response: accepts bump the accept
    /// counter; rejects bump one counter per distinct QV-* code in the
    /// attached diagnostics (or [`STRUCTURAL_CODE`] when there are none).
    pub fn record_admission(&self, response: &Value) {
        let result = response.get("result").and_then(Value::as_str);
        let mut inner = self.inner.lock().expect("stats poisoned");
        match result {
            Some("accepted") => inner.accepted += 1,
            Some("rejected") => {
                inner.rejected += 1;
                let mut codes: Vec<String> = response
                    .get("diagnostics")
                    .and_then(Value::as_array)
                    .map(|diags| {
                        diags
                            .iter()
                            .filter_map(|d| d.get("code").and_then(Value::as_str))
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default();
                codes.sort();
                codes.dedup();
                if codes.is_empty() {
                    codes.push(STRUCTURAL_CODE.to_string());
                }
                for code in codes {
                    *inner.rejected_by_code.entry(code).or_insert(0) += 1;
                }
            }
            _ => {}
        }
    }

    /// Record one committed mutation's wall-clock latency.
    pub fn record_commit_latency_ns(&self, ns: u64) {
        let mut inner = self.inner.lock().expect("stats poisoned");
        inner.commit_latency_ns.record(ns);
    }

    /// Graft the request/admission sections onto a `status` response.
    pub fn status_fields(&self, status: Value) -> Value {
        let inner = self.inner.lock().expect("stats poisoned");
        let mut requests = Value::object();
        for (op, count) in &inner.requests {
            requests = requests.set(op.as_str(), *count);
        }
        let mut by_code = Value::object();
        for (code, count) in &inner.rejected_by_code {
            by_code = by_code.set(code.as_str(), *count);
        }
        status.set("requests", requests).set(
            "admission",
            Value::object()
                .set("accepted", inner.accepted)
                .set("rejected", inner.rejected)
                .set("rejected_by_code", by_code),
        )
    }

    /// Serialize as telemetry-schema JSONL (counters plus the latency
    /// histogram), ready for [`qvisor_telemetry::prometheus::render`].
    pub fn export_jsonl(&self) -> String {
        let inner = self.inner.lock().expect("stats poisoned");
        let mut out = String::new();
        let mut counter = |name: &str, labels: Value, value: u64| {
            let line = Value::object()
                .set("type", "counter")
                .set("name", name)
                .set("labels", labels)
                .set("value", value);
            out.push_str(&line.to_compact());
            out.push('\n');
        };
        for (op, count) in &inner.requests {
            counter(
                "serve_requests",
                Value::object().set("op", op.as_str()),
                *count,
            );
        }
        counter("serve_admission_accepted", Value::object(), inner.accepted);
        for (code, count) in &inner.rejected_by_code {
            counter(
                "serve_admission_rejected",
                Value::object().set("code", code.as_str()),
                *count,
            );
        }
        let h = &inner.commit_latency_ns;
        if h.count() > 0 {
            let buckets: Vec<Value> = h
                .buckets()
                .iter()
                .map(|b| {
                    Value::from(vec![
                        Value::from(b.lo),
                        Value::from(b.hi),
                        Value::from(b.count),
                    ])
                })
                .collect();
            let line = Value::object()
                .set("type", "histogram")
                .set("name", "serve_commit_latency_ns")
                .set("labels", Value::object())
                .set("count", h.count())
                .set("min", h.min())
                .set("max", h.max())
                .set("mean", h.mean())
                .set("p50", h.quantile(0.50))
                .set("p90", h.quantile(0.90))
                .set("p99", h.quantile(0.99))
                .set("buckets", Value::from(buckets));
            out.push_str(&line.to_compact());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_and_admissions_accumulate() {
        let stats = ServeStats::default();
        stats.record_op("status");
        stats.record_op("status");
        stats.record_op("submit-policy");
        stats.record_admission(&Value::parse(r#"{"ok":true,"result":"accepted"}"#).unwrap());
        stats.record_admission(
            &Value::parse(
                r#"{"ok":false,"result":"rejected","diagnostics":[{"code":"QV-OVERFLOW"},{"code":"QV-OVERFLOW"},{"code":"QV-ISOLATION"}]}"#,
            )
            .unwrap(),
        );
        stats.record_admission(&Value::parse(r#"{"ok":false,"result":"rejected"}"#).unwrap());
        let status = stats.status_fields(Value::object().set("ok", true));
        let s = status.to_compact();
        assert!(s.contains(r#""status":2"#), "{s}");
        assert!(s.contains(r#""accepted":1"#), "{s}");
        assert!(s.contains(r#""QV-OVERFLOW":1"#), "{s}");
        assert!(s.contains(r#""QV-ISOLATION":1"#), "{s}");
        assert!(s.contains(&format!(r#""{STRUCTURAL_CODE}":1"#)), "{s}");
        assert!(s.contains(r#""rejected":2"#), "{s}");
    }

    #[test]
    fn export_renders_as_prometheus_text() {
        let stats = ServeStats::default();
        stats.record_op("metrics");
        stats.record_admission(&Value::parse(r#"{"ok":true,"result":"accepted"}"#).unwrap());
        stats.record_commit_latency_ns(1_500);
        stats.record_commit_latency_ns(90_000);
        let body = qvisor_telemetry::prometheus::render(&stats.export_jsonl()).unwrap();
        assert!(
            body.contains(r#"qvisor_serve_requests{op="metrics"} 1"#),
            "{body}"
        );
        assert!(body.contains("qvisor_serve_admission_accepted 1"), "{body}");
        assert!(
            body.contains("qvisor_serve_commit_latency_ns_count 2"),
            "{body}"
        );
    }

    #[test]
    fn latency_histogram_is_omitted_until_a_commit() {
        let stats = ServeStats::default();
        assert!(!stats.export_jsonl().contains("serve_commit_latency_ns"));
    }
}
