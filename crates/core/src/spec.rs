//! Tenant specifications — QVISOR's first input (§3.1).

use qvisor_ranking::RankRange;
use qvisor_sim::TenantId;

/// A tenant's declaration: who they are, what ranks their policy emits, and
/// how finely QVISOR may quantize them.
///
/// Per the paper, a tenant is "a traffic subset and a scheduling algorithm".
/// The traffic subset is identified by [`TenantSpec::id`] (packets carry
/// their tenant id as a label); the scheduling algorithm lives at the end
/// host as a rank function, and what QVISOR needs from it is its *declared
/// rank range* — the bounded, known-in-advance distribution §3.2 assumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant identifier carried in packet labels.
    pub id: TenantId,
    /// Name used in the operator's policy string.
    pub name: String,
    /// Human-readable name of the tenant's scheduling algorithm.
    pub algorithm: String,
    /// Declared bounds of the tenant's rank function.
    pub range: RankRange,
    /// Quantization levels for normalization; `None` lets the synthesizer
    /// pick `min(default_levels, range.width())`.
    pub levels: Option<u64>,
}

impl TenantSpec {
    /// A spec with defaulted quantization.
    pub fn new(
        id: TenantId,
        name: impl Into<String>,
        algorithm: impl Into<String>,
        range: RankRange,
    ) -> TenantSpec {
        TenantSpec {
            id,
            name: name.into(),
            algorithm: algorithm.into(),
            range,
            levels: None,
        }
    }

    /// Override the quantization level count.
    ///
    /// # Panics
    /// Panics if `levels` is zero.
    pub fn with_levels(mut self, levels: u64) -> TenantSpec {
        assert!(levels > 0, "levels must be positive");
        self.levels = Some(levels);
        self
    }

    /// Effective quantization levels given the synthesizer default.
    pub fn effective_levels(&self, default_levels: u64) -> u64 {
        self.levels
            .unwrap_or(default_levels)
            .min(self.range.width())
            .max(1)
    }
}

/// Global synthesizer tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Default quantization levels per tenant when the spec doesn't say.
    pub default_levels: u64,
    /// The smallest rank the joint policy may emit (the paper's Fig. 3 uses
    /// 1; 0 is the natural default).
    pub first_rank: u64,
    /// Best-effort preference bias between `>`-chained groups, as a divisor
    /// of the widest group's band: bias = ceil(width / divisor). Divisor 2
    /// means the favoured group's upper half overlaps the next group.
    pub pref_bias_divisor: u64,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            default_levels: 8,
            first_rank: 0,
            pref_bias_divisor: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_levels_clamp_to_width() {
        let spec = TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(7, 9));
        // width 3 < default 8
        assert_eq!(spec.effective_levels(8), 3);
        assert_eq!(spec.clone().with_levels(2).effective_levels(8), 2);
        // requesting more levels than distinct ranks is clamped
        assert_eq!(spec.with_levels(10).effective_levels(8), 3);
    }

    #[test]
    fn wide_range_uses_default() {
        let spec = TenantSpec::new(TenantId(1), "T1", "EDF", RankRange::new(0, 10_000));
        assert_eq!(spec.effective_levels(8), 8);
        assert_eq!(spec.with_levels(64).effective_levels(8), 64);
    }

    #[test]
    #[should_panic(expected = "levels must be positive")]
    fn zero_levels_rejected() {
        let _ = TenantSpec::new(TenantId(1), "T1", "x", RankRange::new(0, 1)).with_levels(0);
    }

    #[test]
    fn default_config() {
        let c = SynthConfig::default();
        assert_eq!(c.default_levels, 8);
        assert_eq!(c.first_rank, 0);
        assert_eq!(c.pref_bias_divisor, 2);
    }
}
