//! The Configuration API (Fig. 1).
//!
//! The paper's architecture exposes a configuration surface through which
//! tenants submit their specifications and the operator submits the
//! composition policy. This module is that surface as data: a serializable
//! [`DeploymentConfig`] that can be checked in next to a switch's config,
//! validated, and turned into a synthesized deployment in one call.
//!
//! ```
//! use qvisor_core::config_api::DeploymentConfig;
//!
//! let json = r#"{
//!     "tenants": [
//!         { "id": 1, "name": "T1", "algorithm": "pFabric",
//!           "rank_min": 0, "rank_max": 100000, "levels": 512 },
//!         { "id": 2, "name": "T2", "algorithm": "EDF",
//!           "rank_min": 0, "rank_max": 10000 }
//!     ],
//!     "policy": "T1 >> T2"
//! }"#;
//! let config = DeploymentConfig::from_json(json).unwrap();
//! let joint = config.synthesize().unwrap();
//! assert!(qvisor_core::analyze(&joint).all_guarantees_hold());
//! ```

use crate::error::{QvisorError, Result};
use crate::policy::Policy;
use crate::spec::{SynthConfig, TenantSpec};
use crate::synth::{synthesize, JointPolicy};
use qvisor_ranking::RankRange;
use qvisor_sim::TenantId;
use serde::{Deserialize, Serialize};

/// One tenant's entry in the configuration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantConfig {
    /// Tenant identifier carried in packet labels.
    pub id: u16,
    /// Name used in the policy string.
    pub name: String,
    /// Human-readable algorithm name.
    pub algorithm: String,
    /// Smallest declared rank.
    pub rank_min: u64,
    /// Largest declared rank.
    pub rank_max: u64,
    /// Optional quantization override.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub levels: Option<u64>,
}

/// Synthesizer options, all defaulted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct SynthOptions {
    /// Default quantization levels per tenant.
    pub default_levels: u64,
    /// First output rank of the joint policy.
    pub first_rank: u64,
    /// Preference bias divisor.
    pub pref_bias_divisor: u64,
}

impl Default for SynthOptions {
    fn default() -> SynthOptions {
        let c = SynthConfig::default();
        SynthOptions {
            default_levels: c.default_levels,
            first_rank: c.first_rank,
            pref_bias_divisor: c.pref_bias_divisor,
        }
    }
}

/// A complete QVISOR deployment description.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// Tenant entries.
    pub tenants: Vec<TenantConfig>,
    /// Operator policy string.
    pub policy: String,
    /// Synthesizer options.
    #[serde(default)]
    pub synth: SynthOptions,
}

impl DeploymentConfig {
    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<DeploymentConfig> {
        serde_json::from_str(json).map_err(|e| QvisorError::Parse {
            at: e.column(),
            msg: format!("configuration JSON: {e}"),
        })
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config types always serialize")
    }

    /// Validate and lower into specs, policy, and synth config.
    pub fn build(&self) -> Result<(Vec<TenantSpec>, Policy, SynthConfig)> {
        let mut specs = Vec::with_capacity(self.tenants.len());
        for t in &self.tenants {
            if t.rank_min > t.rank_max {
                return Err(QvisorError::Synthesis(format!(
                    "tenant '{}' declares an empty rank range [{}, {}]",
                    t.name, t.rank_min, t.rank_max
                )));
            }
            if t.levels == Some(0) {
                return Err(QvisorError::Synthesis(format!(
                    "tenant '{}' declares zero quantization levels",
                    t.name
                )));
            }
            let mut spec = TenantSpec::new(
                TenantId(t.id),
                t.name.clone(),
                t.algorithm.clone(),
                RankRange::new(t.rank_min, t.rank_max),
            );
            spec.levels = t.levels;
            specs.push(spec);
        }
        let policy = Policy::parse(&self.policy)?;
        let synth = SynthConfig {
            default_levels: self.synth.default_levels,
            first_rank: self.synth.first_rank,
            pref_bias_divisor: self.synth.pref_bias_divisor,
        };
        Ok((specs, policy, synth))
    }

    /// One-shot: validate and synthesize the joint policy.
    pub fn synthesize(&self) -> Result<JointPolicy> {
        let (specs, policy, synth) = self.build()?;
        synthesize(&specs, &policy, synth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeploymentConfig {
        DeploymentConfig {
            tenants: vec![
                TenantConfig {
                    id: 1,
                    name: "T1".into(),
                    algorithm: "pFabric".into(),
                    rank_min: 0,
                    rank_max: 100_000,
                    levels: Some(512),
                },
                TenantConfig {
                    id: 2,
                    name: "T2".into(),
                    algorithm: "EDF".into(),
                    rank_min: 0,
                    rank_max: 10_000,
                    levels: None,
                },
            ],
            policy: "T1 >> T2".into(),
            synth: SynthOptions::default(),
        }
    }

    #[test]
    fn json_roundtrip() {
        let cfg = sample();
        let json = cfg.to_json();
        let back = DeploymentConfig::from_json(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn minimal_json_uses_defaults() {
        let json = r#"{
            "tenants": [
                {"id": 1, "name": "a", "algorithm": "x", "rank_min": 0, "rank_max": 9}
            ],
            "policy": "a"
        }"#;
        let cfg = DeploymentConfig::from_json(json).unwrap();
        assert_eq!(cfg.synth, SynthOptions::default());
        assert_eq!(cfg.tenants[0].levels, None);
        assert!(cfg.synthesize().is_ok());
    }

    #[test]
    fn synthesize_end_to_end() {
        let joint = sample().synthesize().unwrap();
        assert!(joint.chain(TenantId(1)).is_some());
        assert!(crate::analysis::analyze(&joint).all_guarantees_hold());
    }

    #[test]
    fn validation_catches_bad_entries() {
        let mut cfg = sample();
        cfg.tenants[0].rank_min = 5;
        cfg.tenants[0].rank_max = 1;
        assert!(matches!(cfg.build(), Err(QvisorError::Synthesis(_))));

        let mut cfg = sample();
        cfg.tenants[1].levels = Some(0);
        assert!(matches!(cfg.build(), Err(QvisorError::Synthesis(_))));

        let mut cfg = sample();
        cfg.policy = "T1 >> T9".into();
        assert!(matches!(
            cfg.synthesize(),
            Err(QvisorError::UnknownTenant(_))
        ));
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let err = DeploymentConfig::from_json("{oops").unwrap_err();
        assert!(matches!(err, QvisorError::Parse { .. }));
        assert!(err.to_string().contains("configuration JSON"));
    }
}
