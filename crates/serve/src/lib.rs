#![deny(missing_docs)]

//! # qvisor-serve — the QVISOR control-plane daemon
//!
//! The paper's deployment story is a *live* hypervisor: tenants submit
//! scheduling policies at runtime, QVISOR admits or rejects them against
//! the operator's composition policy, and the data plane keeps forwarding
//! while transform chains are resynthesized underneath it. This crate is
//! that process, assembled entirely from the workspace's library pieces:
//!
//! - **Protocol** ([`protocol`]): line-delimited JSON over TCP
//!   (`std::net` only). Requests: `submit-policy`, `withdraw-tenant`,
//!   `get-chain`, `status`, `metrics`, `snapshot`, `get-log`,
//!   `subscribe-telemetry`, `shutdown`.
//! - **Admission gate** ([`control`]): every submission is synthesized
//!   into a candidate joint policy and run through the static verifier;
//!   failures are rejected with the full structured QV-* diagnostic
//!   report *and* the exact candidate document, so `qvisor check` on that
//!   document reproduces the rejection bit-for-bit.
//! - **Chain registry** ([`registry`]): accepted states are published as
//!   immutable fingerprinted snapshots behind an atomic pointer swap;
//!   readers never block on a resynthesis, and a fingerprint mismatch
//!   would prove a torn read.
//! - **Policy store** ([`store`]): the fixed tenant universe, the live
//!   set, and the append-only accepted-mutation log whose sequential
//!   replay must rebuild byte-identical state (checked by the
//!   `serve_load` harness in `qvisor-bench`).
//! - **Daemon shell** ([`daemon`]): accept thread + per-connection
//!   session threads + a single control thread that owns the
//!   [`ControlPlane`] and serializes mutations.
//! - **Statistics** ([`stats`]): per-op request counters, admission
//!   accepts/rejects bucketed by QV-* diagnostic code, and a commit
//!   latency histogram — surfaced both in the `status` response and as a
//!   Prometheus text exposition via the `metrics` request.
//!
//! Run it as `qvisor serve <config.json> [--listen ADDR]`; see DESIGN.md
//! ("Control plane") for the wire schema and threading model.

pub mod control;
pub mod daemon;
pub mod protocol;
pub mod registry;
pub mod stats;
pub mod store;

pub use control::ControlPlane;
pub use daemon::{Daemon, ServeOptions, STREAM_END};
pub use protocol::Request;
pub use registry::{ChainEntry, ChainSnapshot, SnapshotCell};
pub use stats::ServeStats;
pub use store::{LogEntry, PolicyStore};
