//! Deterministic discrete-event queue.
//!
//! Events scheduled for the same instant pop in the order they were pushed
//! (FIFO tie-break via a monotone sequence number), so simulations are
//! reproducible regardless of heap internals.

use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: Nanos,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest (then lowest
        // seq) first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue driving a discrete-event simulation.
///
/// The queue tracks the current simulation clock: [`EventQueue::pop`]
/// advances it to the popped event's timestamp, and scheduling an event in
/// the past is a logic error that panics.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Nanos,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Nanos::ZERO,
        }
    }

    /// Current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock — causality violation.
    pub fn schedule(&mut self, at: Nanos, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` at `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: Nanos, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(30), "c");
        q.schedule(Nanos(10), "a");
        q.schedule(Nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(Nanos(5), label);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(100), ());
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), Nanos(100));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(50), 1);
        q.pop();
        q.schedule_in(Nanos(25), 2);
        assert_eq!(q.peek_time(), Some(Nanos(75)));
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), ());
        q.pop();
        q.schedule(Nanos(5), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Nanos(1), 0);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_interleaved_push_pop_stays_fifo() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), 1);
        q.schedule(Nanos(10), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(Nanos(10), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }
}
