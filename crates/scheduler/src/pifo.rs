//! Exact PIFO (push-in first-out) queue.
//!
//! The ideal programmable scheduler (Sivaraman et al., SIGCOMM '16): packets
//! are kept sorted by rank; dequeue always returns the minimum-rank packet;
//! when the buffer is full the *worst*-ranked packets are dropped first
//! (priority drop), which is what gives pFabric-style policies their gains
//! under congestion.

use crate::queue::{Capacity, Enqueue, PacketQueue};
use qvisor_sim::{Nanos, Packet, Rank};
use std::collections::BTreeMap;

/// An exact PIFO with byte capacity and worst-rank drop.
///
/// Ties on rank break FIFO (by arrival order), so equal-rank traffic is not
/// reordered — the behaviour the paper's Fig. 3 example assumes.
#[derive(Debug)]
pub struct PifoQueue {
    /// Sorted by (rank, arrival sequence): first entry = next to dequeue,
    /// last entry = first to drop.
    entries: BTreeMap<(Rank, u64), Packet>,
    capacity: Capacity,
    bytes: u64,
    arrivals: u64,
}

impl PifoQueue {
    /// An empty PIFO with the given byte capacity.
    pub fn new(capacity: Capacity) -> PifoQueue {
        PifoQueue {
            entries: BTreeMap::new(),
            capacity,
            bytes: 0,
            arrivals: 0,
        }
    }

    /// Rank of the worst (last-to-dequeue) packet, if any.
    pub fn worst_rank(&self) -> Option<Rank> {
        self.entries.keys().next_back().map(|&(r, _)| r)
    }
}

impl PacketQueue for PifoQueue {
    fn enqueue(&mut self, p: Packet, _now: Nanos) -> Enqueue {
        let size = p.size as u64;
        let key = (p.txf_rank, self.arrivals);
        self.arrivals += 1;

        if self.capacity.fits(self.bytes, size) {
            self.bytes += size;
            self.entries.insert(key, p);
            return Enqueue::Accepted;
        }

        // Priority drop. Plan first, commit after: victims are the worst
        // residents *strictly* worse than the arrival (ties keep residents —
        // they arrived first). Only if those free enough bytes is the
        // arrival admitted; otherwise the arrival is the victim and the
        // queue is left untouched.
        let mut freed = 0u64;
        let mut victims: Vec<(Rank, u64)> = Vec::new();
        for (&(rank, seq), resident) in self.entries.iter().rev() {
            if self.capacity.fits(self.bytes - freed, size) {
                break;
            }
            if rank <= p.txf_rank {
                return Enqueue::Rejected(Box::new(p));
            }
            freed += resident.size as u64;
            victims.push((rank, seq));
        }
        if !self.capacity.fits(self.bytes - freed, size) {
            // Not enough strictly-worse bytes (or empty queue with an
            // oversized arrival): reject the arrival.
            return Enqueue::Rejected(Box::new(p));
        }
        let dropped: Vec<Packet> = victims
            .into_iter()
            .map(|k| self.entries.remove(&k).expect("victim key just observed"))
            .collect();
        self.bytes -= freed;
        self.bytes += size;
        self.entries.insert(key, p);
        if dropped.is_empty() {
            Enqueue::Accepted
        } else {
            Enqueue::AcceptedDropped(dropped)
        }
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        let (&key, _) = self.entries.first_key_value()?;
        let p = self.entries.remove(&key).expect("key just observed");
        self.bytes -= p.size as u64;
        Some(p)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn head_rank(&self) -> Option<Rank> {
        self.entries.keys().next().map(|&(r, _)| r)
    }

    fn kind(&self) -> &'static str {
        "pifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvisor_sim::{FlowId, NodeId, TenantId};

    fn pkt(seq: u64, rank: Rank) -> Packet {
        sized(seq, rank, 100)
    }

    fn sized(seq: u64, rank: Rank, size: u32) -> Packet {
        let mut p = Packet::data(
            FlowId(1),
            TenantId(0),
            seq,
            size,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        );
        p.txf_rank = rank;
        p
    }

    fn drain(q: &mut PifoQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.dequeue(Nanos::ZERO))
            .map(|p| p.seq)
            .collect()
    }

    #[test]
    fn dequeues_in_rank_order() {
        let mut q = PifoQueue::new(Capacity::UNBOUNDED);
        for (seq, rank) in [(0, 9u64), (1, 2), (2, 7), (3, 1)] {
            q.enqueue(pkt(seq, rank), Nanos::ZERO);
        }
        assert_eq!(drain(&mut q), vec![3, 1, 2, 0]);
    }

    #[test]
    fn equal_ranks_stay_fifo() {
        let mut q = PifoQueue::new(Capacity::UNBOUNDED);
        for seq in 0..5 {
            q.enqueue(pkt(seq, 4), Nanos::ZERO);
        }
        assert_eq!(drain(&mut q), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn paper_fig3_output_order() {
        // Transformed ranks from Fig. 3: the PIFO must emit 1,2,3,4,5,6,7.
        let mut q = PifoQueue::new(Capacity::UNBOUNDED);
        for (seq, rank) in [(0, 5u64), (1, 4), (2, 7), (3, 6), (4, 3), (5, 2), (6, 1)] {
            q.enqueue(pkt(seq, rank), Nanos::ZERO);
        }
        let ranks: Vec<Rank> = std::iter::from_fn(|| q.dequeue(Nanos::ZERO))
            .map(|p| p.txf_rank)
            .collect();
        assert_eq!(ranks, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn full_queue_drops_worst_resident() {
        let mut q = PifoQueue::new(Capacity::bytes(300));
        q.enqueue(pkt(0, 5), Nanos::ZERO);
        q.enqueue(pkt(1, 9), Nanos::ZERO);
        q.enqueue(pkt(2, 7), Nanos::ZERO);
        // Queue full (300 bytes). A rank-1 arrival must evict seq 1 (rank 9).
        let r = q.enqueue(pkt(3, 1), Nanos::ZERO);
        let dropped = r.dropped();
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].seq, 1);
        assert_eq!(drain(&mut q), vec![3, 0, 2]);
    }

    #[test]
    fn full_queue_rejects_worst_arrival() {
        let mut q = PifoQueue::new(Capacity::bytes(200));
        q.enqueue(pkt(0, 5), Nanos::ZERO);
        q.enqueue(pkt(1, 6), Nanos::ZERO);
        let r = q.enqueue(pkt(2, 6), Nanos::ZERO); // ties prefer residents
        assert!(!r.accepted());
        assert_eq!(q.len(), 2);
        assert_eq!(q.bytes(), 200);
    }

    #[test]
    fn eviction_frees_enough_for_large_arrival() {
        let mut q = PifoQueue::new(Capacity::bytes(300));
        q.enqueue(sized(0, 9, 100), Nanos::ZERO);
        q.enqueue(sized(1, 8, 100), Nanos::ZERO);
        q.enqueue(sized(2, 7, 100), Nanos::ZERO);
        // 250-byte arrival at rank 1 needs all three evictions: after two,
        // 100 resident + 250 arriving = 350 > 300 still overflows.
        let r = q.enqueue(sized(3, 1, 250), Nanos::ZERO);
        let dropped = r.dropped();
        assert_eq!(
            dropped.iter().map(|p| p.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(q.bytes(), 250);
        assert_eq!(drain(&mut q), vec![3]);
    }

    #[test]
    fn rejecting_arrival_leaves_queue_untouched() {
        // Strictly-worse residents don't free enough bytes for the arrival:
        // the arrival must be rejected with NO evictions.
        let mut q = PifoQueue::new(Capacity::bytes(200));
        q.enqueue(sized(0, 9, 100), Nanos::ZERO);
        q.enqueue(sized(1, 5, 100), Nanos::ZERO);
        let r = q.enqueue(sized(2, 5, 150), Nanos::ZERO);
        assert!(!r.accepted());
        assert_eq!(q.len(), 2);
        assert_eq!(q.bytes(), 200);
        assert_eq!(drain(&mut q), vec![1, 0]);
    }

    #[test]
    fn oversized_packet_rejected_even_when_empty() {
        let mut q = PifoQueue::new(Capacity::bytes(100));
        let r = q.enqueue(sized(0, 1, 200), Nanos::ZERO);
        assert!(!r.accepted());
        assert!(q.is_empty());
    }

    #[test]
    fn worst_and_head_rank() {
        let mut q = PifoQueue::new(Capacity::UNBOUNDED);
        assert_eq!(q.head_rank(), None);
        assert_eq!(q.worst_rank(), None);
        q.enqueue(pkt(0, 4), Nanos::ZERO);
        q.enqueue(pkt(1, 8), Nanos::ZERO);
        assert_eq!(q.head_rank(), Some(4));
        assert_eq!(q.worst_rank(), Some(8));
    }
}
