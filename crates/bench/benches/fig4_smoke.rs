//! Smoke-scale Fig. 4: one point per scheme at load 0.5 on the small
//! fabric. This measures wall-clock per point; the *quality* numbers
//! (FCTs per scheme × load) come from the `fig4` binary — see
//! EXPERIMENTS.md.

use qvisor_bench::harness::{bench, print_header};
use qvisor_bench::{run_point, Fig4Config, Scheme};

fn main() {
    print_header("fig4_smoke: one point per scheme, load 0.5");
    let cfg = Fig4Config::smoke();
    for scheme in Scheme::ALL {
        bench(&format!("{scheme:?}_load0.5"), || {
            let p = run_point(scheme, 0.5, &cfg);
            assert!(p.completed > 0);
            p.events
        });
    }
}
