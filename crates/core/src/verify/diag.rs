//! Structured diagnostics for the static verifier.
//!
//! Every finding is a [`Diagnostic`]: a stable code, a severity, a *span*
//! (the dotted spec path of the construct at fault, matching the scenario
//! codec's error paths), a message, and — for every refuted ordering or
//! overflow property — a concrete [`Witness`] pair of input ranks that
//! demonstrates the violation when fed through the actual chain.

use qvisor_sim::json::Value;
use qvisor_sim::Rank;
use std::fmt;

/// How serious a finding is.
///
/// Ordered: `Info < Warning < Error`. The engine gate fails on `Error`
/// always and on `Warning` under `--deny-warnings`; `Info` never gates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Expected, quantified precision loss (e.g. quantization collisions).
    Info,
    /// Suspicious but not a proven guarantee violation.
    Warning,
    /// A refuted property, carrying a concrete witness where one exists.
    Error,
}

impl Severity {
    /// Lower-case label used in text and JSONL renderings.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable diagnostic codes (the contract the mutation suite tests against).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiagCode {
    /// Chain arithmetic saturates at `Rank::MAX` on declared inputs.
    Overflow,
    /// A clamp (or normalize input bound) cuts into the declared range.
    ClampEngaged,
    /// The chain is not order-preserving on the declared range.
    NonMonotone,
    /// Distinct inputs collapse beyond what quantization permits
    /// (saturation or boundary collisions, not the quantize step itself).
    OrderCollapse,
    /// Quantize-step collision bound (how many distinct input ranks can
    /// land on one output rank). Expected whenever levels < range width.
    QuantCollision,
    /// Two tenants separated by `>>` have overlapping output spans.
    StrictOverlap,
    /// Two tenants separated by `>>` are disjoint but in the wrong order.
    StrictOrder,
    /// A `+` share group fails to interleave within its band.
    ShareBand,
    /// A `>` preference degenerated to strict isolation (bias too large).
    PreferDegenerate,
    /// A declared tenant does not appear in the policy.
    Unscheduled,
}

impl DiagCode {
    /// Every diagnostic code, in declaration order. Lets tooling (the
    /// fuzz corpus naming contract, doc generators) enumerate the stable
    /// code strings without hand-maintaining a parallel list.
    pub const ALL: [DiagCode; 10] = [
        DiagCode::Overflow,
        DiagCode::ClampEngaged,
        DiagCode::NonMonotone,
        DiagCode::OrderCollapse,
        DiagCode::QuantCollision,
        DiagCode::StrictOverlap,
        DiagCode::StrictOrder,
        DiagCode::ShareBand,
        DiagCode::PreferDegenerate,
        DiagCode::Unscheduled,
    ];

    /// The stable code string.
    pub fn as_str(&self) -> &'static str {
        match self {
            DiagCode::Overflow => "QV-OVERFLOW",
            DiagCode::ClampEngaged => "QV-CLAMP",
            DiagCode::NonMonotone => "QV-NONMONO",
            DiagCode::OrderCollapse => "QV-COLLAPSE",
            DiagCode::QuantCollision => "QV-QUANT",
            DiagCode::StrictOverlap => "QV-STRICT-OVERLAP",
            DiagCode::StrictOrder => "QV-STRICT-ORDER",
            DiagCode::ShareBand => "QV-SHARE-BAND",
            DiagCode::PreferDegenerate => "QV-PREF-DEGENERATE",
            DiagCode::Unscheduled => "QV-UNSCHEDULED",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A concrete pair of input ranks demonstrating a violation.
///
/// For intra-tenant findings both inputs go through the same chain; for
/// cross-tenant findings `a` is the higher-priority tenant's input and `b`
/// the lower-priority tenant's. In every case the outputs are actual
/// `TransformChain::apply` results, re-checkable by the reader.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Witness {
    /// First input rank.
    pub input_a: Rank,
    /// `chain(input_a)`.
    pub output_a: Rank,
    /// Second input rank.
    pub input_b: Rank,
    /// `chain(input_b)`.
    pub output_b: Rank,
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "f({}) = {} vs f({}) = {}",
            self.input_a, self.output_a, self.input_b, self.output_b
        )
    }
}

/// One verifier finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: DiagCode,
    /// Severity (usually the code's default; witness-less refutations are
    /// downgraded to warnings).
    pub severity: Severity,
    /// Dotted spec path of the construct at fault (e.g.
    /// `qvisor.tenants.0.levels`), matching the scenario codec's paths.
    pub span: String,
    /// Human-readable explanation.
    pub message: String,
    /// Concrete demonstrating input pair, when one was found and verified.
    pub witness: Option<Witness>,
}

impl Diagnostic {
    /// Render as one JSONL object.
    pub fn to_value(&self) -> Value {
        let mut v = Value::object()
            .set("type", "diag")
            .set("code", self.code.as_str())
            .set("severity", self.severity.as_str())
            .set("span", self.span.as_str())
            .set("message", self.message.as_str());
        if let Some(w) = &self.witness {
            v = v.set(
                "witness",
                Value::object()
                    .set("input_a", w.input_a)
                    .set("output_a", w.output_a)
                    .set("input_b", w.input_b)
                    .set("output_b", w.output_b),
            );
        }
        v
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} at {}: {}",
            self.severity.as_str(),
            self.code,
            self.span,
            self.message
        )?;
        if let Some(w) = &self.witness {
            write!(f, " [witness: {w}]")?;
        }
        Ok(())
    }
}
