//! Ablation: deployment backends (§3.4).
//!
//! The same joint policy (`pFabric >> EDF`) deployed on the ideal PIFO, an
//! 8-queue banded-static bank, an 8-queue SP-PIFO bank, a 32-queue banded
//! bank, AIFO, and plain FIFO — same workload, same seed. Reports the
//! pFabric tenant's FCTs and the EDF tenant's deadline hit rate per
//! backend.
//!
//! Usage: cargo run -p qvisor-bench --release --bin ablation_backend
//!        [-- --telemetry PREFIX]   write PREFIX-<backend>.jsonl per backend

use qvisor_bench::snapshot;
use qvisor_core::{SynthConfig, TenantSpec, UnknownTenantAction};
use qvisor_netsim::{QvisorSetup, SchedulerKind, SimConfig, Simulation};
use qvisor_ranking::{Edf, PFabric, RankRange};
use qvisor_sim::{Nanos, SimRng, TenantId};
use qvisor_telemetry::Telemetry;
use qvisor_topology::{LeafSpine, LeafSpineConfig};
use qvisor_transport::SizeBucket;
use qvisor_workloads::{
    arrival_rate_for_load, cbr_tenant, EmpiricalCdf, FlowSizeDist, PoissonFlowGen,
};

const PF: TenantId = TenantId(1);
const ED: TenantId = TenantId(2);

fn run(scheduler: SchedulerKind, telemetry: &Telemetry) -> (f64, f64, f64) {
    let fabric = LeafSpine::build(&LeafSpineConfig::paper());
    let hosts = fabric.all_hosts();
    let scale = 10u64;
    let sizes = EmpiricalCdf::data_mining().scaled(1, scale);
    let max_rank = 100_000_000 / scale / 1_000;

    let specs = vec![
        TenantSpec::new(PF, "pFabric", "pFabric", RankRange::new(0, max_rank)).with_levels(512),
        TenantSpec::new(ED, "EDF", "EDF", RankRange::new(0, 10)).with_levels(8),
    ];
    let cfg = SimConfig {
        seed: 2,
        horizon: Nanos::from_secs(3),
        scheduler,
        qvisor: Some(QvisorSetup {
            specs,
            policy: "pFabric >> EDF".into(),
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope: Default::default(),
            monitor: None,
        }),
        telemetry: telemetry.clone(),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(fabric.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(PF, Box::new(PFabric::new(1_000, max_rank)));
    sim.register_rank_fn(ED, Box::new(Edf::new(Nanos::from_micros(60), 10)));

    let rng = SimRng::seed_from(2);
    let rate = arrival_rate_for_load(0.6, hosts.len(), qvisor_sim::gbps(1), sizes.mean_bytes());
    let flows = PoissonFlowGen {
        tenant: PF,
        hosts: &hosts,
        sizes: &sizes,
        rate_flows_per_sec: rate,
    }
    .generate(800, &mut rng.derive(1));
    let last = flows.last().unwrap().start;
    for f in &flows {
        sim.add_generated(f);
    }
    for s in &cbr_tenant(
        ED,
        &hosts,
        50,
        500_000_000,
        1_500,
        Nanos::ZERO,
        last + Nanos::from_millis(10),
        Nanos::from_micros(300),
        &mut rng.derive(2),
    ) {
        sim.add_generated_cbr(s);
    }
    let r = sim.run();
    let small = SizeBucket {
        lo: 1,
        hi: 100_000 / scale,
    };
    let large = SizeBucket {
        lo: 1_000_000 / scale,
        hi: u64::MAX,
    };
    (
        r.fct.mean_fct_ms(Some(PF), small).unwrap_or(f64::NAN),
        r.fct.mean_fct_ms(Some(PF), large).unwrap_or(f64::NAN),
        r.tenant(ED).deadline_hit_rate().unwrap_or(f64::NAN) * 100.0,
    )
}

fn telemetry_prefix() -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.iter().position(|a| a == "--telemetry").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("missing value after --telemetry");
            std::process::exit(2);
        })
    })
}

fn main() {
    println!("Ablation: deployment backends (policy pFabric >> EDF, load 0.6)");
    println!(
        "{:<28}{:>16}{:>16}{:>16}",
        "backend", "small FCT (ms)", "large FCT (ms)", "EDF on-time (%)"
    );
    let max_rank = 100_000_000 / 10 / 1_000;
    let backends: Vec<(&str, SchedulerKind)> = vec![
        ("ideal PIFO", SchedulerKind::Pifo),
        (
            "8q strict (banded static)",
            SchedulerKind::StrictStatic {
                queues: 8,
                span: RankRange::new(0, max_rank),
            },
        ),
        (
            "32q strict (banded static)",
            SchedulerKind::StrictStatic {
                queues: 32,
                span: RankRange::new(0, max_rank),
            },
        ),
        ("8q SP-PIFO", SchedulerKind::SpPifo { queues: 8 }),
        (
            "AIFO (w=64, k=0.1)",
            SchedulerKind::Aifo {
                window: 64,
                burst: 0.1,
            },
        ),
        ("FIFO", SchedulerKind::Fifo),
    ];
    let prefix = telemetry_prefix();
    for (name, sched) in backends {
        let telemetry = match prefix {
            Some(_) => Telemetry::enabled(),
            None => Telemetry::disabled(),
        };
        let (small, large, hit) = run(sched, &telemetry);
        println!("{name:<28}{small:>16.3}{large:>16.2}{hit:>16.1}");
        if let Some(prefix) = &prefix {
            eprintln!(
                "  wrote {}",
                snapshot::write_snapshot(&telemetry, prefix, name)
            );
        }
    }
    println!(
        "\nMore queues bring the banded bank closer to the PIFO; SP-PIFO \
         adapts without per-policy allocation; FIFO ignores the policy."
    );
}
