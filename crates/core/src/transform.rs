//! Rank transformation functions (§3.2).
//!
//! The synthesizer expresses the joint scheduling function as per-tenant
//! chains of rank transformations applied by the pre-processor at line
//! rate. The paper names two: *rank-normalization* (bound + quantize into
//! discrete levels) and *rank-shift* (move a tenant's band). We add the
//! *stride* generalization of shift that interleaves share-group members,
//! and a defensive *clamp*.
//!
//! Every operation is a handful of integer ops — the whole chain evaluates
//! in O(length) with no branches on packet contents, which is what makes
//! "apply at line rate" plausible on real pre-processors.

use qvisor_ranking::RankRange;
use qvisor_sim::Rank;
use std::fmt;

/// One rank transformation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankTransform {
    /// Rank-normalization: clamp into `input`, then quantize onto
    /// `0..levels` (round-half-up linear scaling).
    Normalize {
        /// Declared input range.
        input: RankRange,
        /// Number of output levels; output is in `[0, levels)`.
        levels: u64,
    },
    /// Rank-shift: add a constant offset.
    Shift {
        /// Amount to add.
        offset: u64,
    },
    /// Interleaving stride for weighted share groups: a tenant owning
    /// `width` consecutive slots of every `every`-slot cycle, starting at
    /// `offset`, maps level `q` to `(q / width) * every + offset + q % width`.
    ///
    /// With `width == 1` this is plain `q * every + offset` — the paper's
    /// Fig. 3 interleaving.
    Stride {
        /// Cycle length (total weight of the share group).
        every: u64,
        /// Slots owned per cycle (this tenant's weight).
        width: u64,
        /// First owned slot within the cycle.
        offset: u64,
    },
    /// Defensive clamp into an output range (used for adversarial-rank
    /// containment).
    Clamp {
        /// Allowed output range.
        range: RankRange,
    },
}

impl RankTransform {
    /// Apply to one rank.
    pub fn apply(&self, rank: Rank) -> Rank {
        match *self {
            RankTransform::Normalize { input, levels } => {
                debug_assert!(levels > 0);
                let r = input.clamp(rank);
                let span = input.max - input.min;
                if span == 0 || levels <= 1 {
                    return 0;
                }
                // round((r - min) * (levels-1) / span), half away from zero,
                // in u128 to avoid overflow on wide ranges.
                let num = (r - input.min) as u128 * (levels - 1) as u128;
                ((num + span as u128 / 2) / span as u128) as u64
            }
            RankTransform::Shift { offset } => rank.saturating_add(offset),
            RankTransform::Stride {
                every,
                width,
                offset,
            } => {
                // Total even on malformed ops (the verifier evaluates those
                // to build witnesses): a zero width would divide by zero,
                // and near `Rank::MAX` the adds would wrap silently —
                // saturate instead, like `Shift`.
                let width = width.max(1);
                (rank / width)
                    .saturating_mul(every)
                    .saturating_add(offset)
                    .saturating_add(rank % width)
            }
            RankTransform::Clamp { range } => range.clamp(rank),
        }
    }

    /// The output range for inputs drawn from `input` (used by the static
    /// analyzer). Exact for monotone ops — everything the synthesizer
    /// emits. For a malformed (non-monotone) op the applied endpoints can
    /// land out of order; they are re-sorted so this never panics, and the
    /// verifier's interval analysis computes the sound bounds instead.
    pub fn output_range(&self, input: RankRange) -> RankRange {
        let lo = self.apply(input.min);
        let hi = self.apply(input.max);
        RankRange::new(lo.min(hi), lo.max(hi))
    }
}

impl fmt::Display for RankTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RankTransform::Normalize { input, levels } => {
                write!(f, "normalize{input}→{levels} levels")
            }
            RankTransform::Shift { offset } => write!(f, "shift+{offset}"),
            RankTransform::Stride {
                every,
                width,
                offset,
            } => write!(f, "stride×{every}(w{width})+{offset}"),
            RankTransform::Clamp { range } => write!(f, "clamp{range}"),
        }
    }
}

/// A tenant's full transformation chain, applied left to right.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransformChain {
    ops: Vec<RankTransform>,
}

impl TransformChain {
    /// An empty (identity) chain.
    pub fn identity() -> TransformChain {
        TransformChain { ops: Vec::new() }
    }

    /// A chain from explicit ops.
    pub fn from_ops(ops: Vec<RankTransform>) -> TransformChain {
        TransformChain { ops }
    }

    /// Append an op.
    pub fn push(&mut self, op: RankTransform) {
        self.ops.push(op);
    }

    /// The ops in order.
    pub fn ops(&self) -> &[RankTransform] {
        &self.ops
    }

    /// Transform one rank.
    pub fn apply(&self, rank: Rank) -> Rank {
        self.ops.iter().fold(rank, |r, op| op.apply(r))
    }

    /// Output range for inputs in `input` (monotone composition).
    pub fn output_range(&self, input: RankRange) -> RankRange {
        self.ops
            .iter()
            .fold(input, |range, op| op.output_range(range))
    }
}

impl fmt::Display for TransformChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ops.is_empty() {
            return write!(f, "identity");
        }
        let parts: Vec<String> = self.ops.iter().map(|o| o.to_string()).collect();
        write!(f, "{}", parts.join(" ∘ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_paper_fig3_values() {
        // T1: [7,9] onto 3 levels -> 7→0, 8→1, 9→2.
        let n = RankTransform::Normalize {
            input: RankRange::new(7, 9),
            levels: 3,
        };
        assert_eq!(n.apply(7), 0);
        assert_eq!(n.apply(8), 1);
        assert_eq!(n.apply(9), 2);
        // T2: [1,3] onto 2 levels -> 1→0, 3→1.
        let n2 = RankTransform::Normalize {
            input: RankRange::new(1, 3),
            levels: 2,
        };
        assert_eq!(n2.apply(1), 0);
        assert_eq!(n2.apply(3), 1);
        // midpoint rounds half-up
        assert_eq!(n2.apply(2), 1);
    }

    #[test]
    fn normalize_clamps_out_of_range_inputs() {
        let n = RankTransform::Normalize {
            input: RankRange::new(10, 20),
            levels: 11,
        };
        assert_eq!(n.apply(0), 0);
        assert_eq!(n.apply(15), 5);
        assert_eq!(n.apply(99), 10);
    }

    #[test]
    fn normalize_degenerate_cases() {
        let single_level = RankTransform::Normalize {
            input: RankRange::new(0, 100),
            levels: 1,
        };
        assert_eq!(single_level.apply(50), 0);
        let single_input = RankTransform::Normalize {
            input: RankRange::new(5, 5),
            levels: 4,
        };
        assert_eq!(single_input.apply(5), 0);
    }

    #[test]
    fn normalize_is_monotone_non_decreasing() {
        let n = RankTransform::Normalize {
            input: RankRange::new(0, 997),
            levels: 13,
        };
        let mut prev = 0;
        for r in 0..=997 {
            let q = n.apply(r);
            assert!(q >= prev, "normalize must be monotone");
            assert!(q < 13);
            prev = q;
        }
        assert_eq!(prev, 12, "top level reached");
    }

    #[test]
    fn shift_saturates() {
        let s = RankTransform::Shift { offset: 10 };
        assert_eq!(s.apply(5), 15);
        assert_eq!(s.apply(u64::MAX - 3), u64::MAX);
    }

    #[test]
    fn stride_interleaves_unit_width() {
        // Fig. 3 share group: every=2; T2 offset 0, T3 offset 1.
        let t2 = RankTransform::Stride {
            every: 2,
            width: 1,
            offset: 0,
        };
        let t3 = RankTransform::Stride {
            every: 2,
            width: 1,
            offset: 1,
        };
        assert_eq!((t2.apply(0), t2.apply(1)), (0, 2));
        assert_eq!((t3.apply(0), t3.apply(1)), (1, 3));
    }

    #[test]
    fn stride_weighted_slots() {
        // Weight 2 of total 3: owns slots {0,1} of every 3.
        let heavy = RankTransform::Stride {
            every: 3,
            width: 2,
            offset: 0,
        };
        assert_eq!(
            (0..4).map(|q| heavy.apply(q)).collect::<Vec<_>>(),
            vec![0, 1, 3, 4]
        );
        // Weight 1 of total 3 at offset 2: slots {2} of every 3.
        let light = RankTransform::Stride {
            every: 3,
            width: 1,
            offset: 2,
        };
        assert_eq!(
            (0..2).map(|q| light.apply(q)).collect::<Vec<_>>(),
            vec![2, 5]
        );
    }

    #[test]
    fn clamp_contains_adversaries() {
        let c = RankTransform::Clamp {
            range: RankRange::new(4, 7),
        };
        assert_eq!(c.apply(0), 4);
        assert_eq!(c.apply(6), 6);
        assert_eq!(c.apply(1 << 60), 7);
    }

    #[test]
    fn chain_composition_fig3_t1() {
        // T1: normalize [7,9]→3 levels, then shift +1 => {1,2,3}.
        let chain = TransformChain::from_ops(vec![
            RankTransform::Normalize {
                input: RankRange::new(7, 9),
                levels: 3,
            },
            RankTransform::Shift { offset: 1 },
        ]);
        assert_eq!([7, 8, 9].map(|r| chain.apply(r)), [1, 2, 3]);
        assert_eq!(
            chain.output_range(RankRange::new(7, 9)),
            RankRange::new(1, 3)
        );
    }

    #[test]
    fn identity_chain() {
        let id = TransformChain::identity();
        assert_eq!(id.apply(42), 42);
        assert_eq!(id.to_string(), "identity");
    }

    #[test]
    fn output_range_tracks_chain() {
        let chain = TransformChain::from_ops(vec![
            RankTransform::Normalize {
                input: RankRange::new(0, 10_000),
                levels: 8,
            },
            RankTransform::Stride {
                every: 2,
                width: 1,
                offset: 1,
            },
            RankTransform::Shift { offset: 100 },
        ]);
        // levels 0..=7 -> stride -> 1..=15 odd -> shift -> 101..=115.
        assert_eq!(
            chain.output_range(RankRange::new(0, 10_000)),
            RankRange::new(101, 115)
        );
    }

    #[test]
    fn stride_saturates_at_rank_max() {
        // (MAX/1)*3 would wrap in release; it must pin at MAX instead.
        let s = RankTransform::Stride {
            every: 3,
            width: 1,
            offset: 0,
        };
        assert_eq!(s.apply(u64::MAX), u64::MAX);
        // Multiply fits but the offset add would wrap.
        let s = RankTransform::Stride {
            every: 1,
            width: 1,
            offset: 10,
        };
        assert_eq!(s.apply(u64::MAX - 3), u64::MAX);
        // The final `+ rank % width` add would wrap.
        let s = RankTransform::Stride {
            every: 4,
            width: 4,
            offset: 0,
        };
        assert_eq!(s.apply(u64::MAX), u64::MAX);
    }

    #[test]
    fn stride_zero_width_is_total() {
        // Malformed op: must not divide by zero (the verifier evaluates
        // malformed strides when computing witnesses).
        let s = RankTransform::Stride {
            every: 0,
            width: 0,
            offset: 7,
        };
        assert_eq!(s.apply(123), 7);
    }

    #[test]
    fn shift_chain_output_range_at_rank_max() {
        let chain = TransformChain::from_ops(vec![
            RankTransform::Shift {
                offset: u64::MAX - 10,
            },
            RankTransform::Shift { offset: 100 },
        ]);
        // Both endpoints saturate to MAX; range must stay well-formed.
        assert_eq!(
            chain.output_range(RankRange::new(50, 60)),
            RankRange::new(u64::MAX, u64::MAX)
        );
    }

    #[test]
    fn output_range_never_panics_on_non_monotone_op() {
        // every < width is non-monotone: cycle boundaries step backwards.
        let s = RankTransform::Stride {
            every: 1,
            width: 4,
            offset: 0,
        };
        let r = s.output_range(RankRange::new(3, 4));
        assert_eq!(r, RankRange::new(1, 3)); // endpoints re-sorted
    }

    #[test]
    fn normalize_wide_range_at_rank_max() {
        let n = RankTransform::Normalize {
            input: RankRange::new(0, u64::MAX),
            levels: u64::MAX,
        };
        assert_eq!(n.apply(0), 0);
        assert_eq!(n.apply(u64::MAX), u64::MAX - 1);
    }

    #[test]
    fn display_is_readable() {
        let chain = TransformChain::from_ops(vec![
            RankTransform::Normalize {
                input: RankRange::new(1, 3),
                levels: 2,
            },
            RankTransform::Shift { offset: 4 },
        ]);
        let s = chain.to_string();
        assert!(s.contains("normalize"));
        assert!(s.contains("shift+4"));
    }
}
