//! Workload generators: Poisson flow arrivals and CBR tenants.

use crate::dist::FlowSizeDist;
use qvisor_sim::{Nanos, NodeId, SimRng, TenantId};

/// One generated reliable flow, before transport instantiation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GeneratedFlow {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Flow size in bytes.
    pub size: u64,
    /// Arrival (start) time.
    pub start: Nanos,
    /// Optional absolute deadline.
    pub deadline: Option<Nanos>,
}

/// One generated constant-bit-rate stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GeneratedCbr {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Sending rate in bits per second.
    pub rate_bps: u64,
    /// Datagram payload size in bytes.
    pub pkt_size: u32,
    /// Stream start.
    pub start: Nanos,
    /// Stream stop.
    pub stop: Nanos,
    /// Per-datagram deadline offset (deadline = emission + offset).
    pub deadline_offset: Nanos,
}

/// Convert a target *load* on the access links into a Poisson flow arrival
/// rate: `λ = load · hosts · access_bps / (8 · mean_flow_size)` flows/sec.
///
/// This is the standard data-center-evaluation convention (and the paper's
/// x-axis in Fig. 4): load 0.8 means each host's access link would be 80 %
/// utilized by this tenant's traffic in expectation.
pub fn arrival_rate_for_load(
    load: f64,
    hosts: usize,
    access_bps: u64,
    mean_flow_bytes: f64,
) -> f64 {
    assert!(load > 0.0, "load must be positive");
    assert!(mean_flow_bytes > 0.0);
    load * hosts as f64 * access_bps as f64 / (8.0 * mean_flow_bytes)
}

/// Poisson-arrival flow generator over uniformly random distinct host
/// pairs.
pub struct PoissonFlowGen<'a> {
    /// Tenant the flows belong to.
    pub tenant: TenantId,
    /// Candidate hosts (src/dst drawn uniformly, src != dst).
    pub hosts: &'a [NodeId],
    /// Flow size distribution.
    pub sizes: &'a dyn FlowSizeDist,
    /// Mean arrival rate, flows per second.
    pub rate_flows_per_sec: f64,
}

impl PoissonFlowGen<'_> {
    /// Generate `count` flows starting from time zero.
    ///
    /// # Panics
    /// Panics with fewer than two hosts or a non-positive rate.
    pub fn generate(&self, count: usize, rng: &mut SimRng) -> Vec<GeneratedFlow> {
        assert!(self.hosts.len() >= 2, "need at least two hosts");
        assert!(self.rate_flows_per_sec > 0.0, "rate must be positive");
        let mean_gap_ns = 1e9 / self.rate_flows_per_sec;
        let mut t = 0.0f64;
        let mut flows = Vec::with_capacity(count);
        for _ in 0..count {
            t += rng.exponential(mean_gap_ns);
            let src = self.hosts[rng.below(self.hosts.len() as u64) as usize];
            let dst = loop {
                let d = self.hosts[rng.below(self.hosts.len() as u64) as usize];
                if d != src {
                    break d;
                }
            };
            flows.push(GeneratedFlow {
                tenant: self.tenant,
                src,
                dst,
                size: self.sizes.sample(rng),
                start: Nanos(t as u64),
                deadline: None,
            });
        }
        flows
    }
}

/// The paper's second tenant: `count` CBR streams at `rate_bps` each
/// between uniformly random distinct host pairs, scheduled with EDF
/// deadlines.
#[allow(clippy::too_many_arguments)]
pub fn cbr_tenant(
    tenant: TenantId,
    hosts: &[NodeId],
    count: usize,
    rate_bps: u64,
    pkt_size: u32,
    start: Nanos,
    stop: Nanos,
    deadline_offset: Nanos,
    rng: &mut SimRng,
) -> Vec<GeneratedCbr> {
    assert!(hosts.len() >= 2, "need at least two hosts");
    assert!(stop > start, "empty CBR interval");
    (0..count)
        .map(|_| {
            let src = hosts[rng.below(hosts.len() as u64) as usize];
            let dst = loop {
                let d = hosts[rng.below(hosts.len() as u64) as usize];
                if d != src {
                    break d;
                }
            };
            GeneratedCbr {
                tenant,
                src,
                dst,
                rate_bps,
                pkt_size,
                start,
                stop,
                deadline_offset,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::FixedSize;

    fn hosts(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn load_conversion() {
        // 144 hosts at 1 Gbps, mean flow 1 MB, load 0.5:
        // 0.5 * 144e9 / (8 * 1e6) = 9000 flows/s.
        let rate = arrival_rate_for_load(0.5, 144, 1_000_000_000, 1_000_000.0);
        assert!((rate - 9_000.0).abs() < 1e-6);
    }

    #[test]
    fn poisson_interarrivals_match_rate() {
        let hs = hosts(16);
        let sizes = FixedSize(1000);
        let gen = PoissonFlowGen {
            tenant: TenantId(1),
            hosts: &hs,
            sizes: &sizes,
            rate_flows_per_sec: 10_000.0,
        };
        let mut rng = SimRng::seed_from(7);
        let flows = gen.generate(20_000, &mut rng);
        assert_eq!(flows.len(), 20_000);
        // Last arrival should be near 20_000 / 10_000 = 2 s.
        let last = flows.last().unwrap().start.as_secs_f64();
        assert!((1.8..2.2).contains(&last), "got {last}");
        // Starts are sorted.
        assert!(flows.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn flows_never_self_target() {
        let hs = hosts(3);
        let sizes = FixedSize(1);
        let gen = PoissonFlowGen {
            tenant: TenantId(1),
            hosts: &hs,
            sizes: &sizes,
            rate_flows_per_sec: 1000.0,
        };
        let mut rng = SimRng::seed_from(8);
        for f in gen.generate(5_000, &mut rng) {
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let hs = hosts(8);
        let sizes = FixedSize(100);
        let gen = PoissonFlowGen {
            tenant: TenantId(1),
            hosts: &hs,
            sizes: &sizes,
            rate_flows_per_sec: 500.0,
        };
        let a = gen.generate(100, &mut SimRng::seed_from(9));
        let b = gen.generate(100, &mut SimRng::seed_from(9));
        assert_eq!(a, b);
    }

    #[test]
    fn cbr_tenant_shape() {
        let hs = hosts(10);
        let mut rng = SimRng::seed_from(10);
        let streams = cbr_tenant(
            TenantId(2),
            &hs,
            100,
            500_000_000,
            1500,
            Nanos::ZERO,
            Nanos::from_millis(100),
            Nanos::from_micros(500),
            &mut rng,
        );
        assert_eq!(streams.len(), 100);
        for s in &streams {
            assert_ne!(s.src, s.dst);
            assert_eq!(s.rate_bps, 500_000_000);
        }
    }
}
