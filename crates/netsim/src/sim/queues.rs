//! Per-port scheduler-model queue construction and the port/metric state
//! cached per device.

use crate::config::{SchedulerKind, SimConfig};
use qvisor_core::{Backend, JointPolicy, QvisorError, SpAdaptation};
use qvisor_scheduler::{
    AifoQueue, FifoQueue, InstrumentedQueue, PacketQueue, PathStep, PifoQueue, PifoTree,
    SpPifoMapper, StaticRangeMapper, StrictPriorityBank, TreePath, TreeShape,
};
use qvisor_sim::{Nanos, NodeId, Packet};
use qvisor_telemetry::{Counter, Histogram};
use qvisor_topology::{NodeKind, Topology};
use std::collections::BTreeMap;

pub(in crate::sim) struct Port {
    pub(in crate::sim) to: NodeId,
    pub(in crate::sim) rate_bps: u64,
    pub(in crate::sim) delay: Nanos,
    pub(in crate::sim) queue: Box<dyn PacketQueue>,
    pub(in crate::sim) busy: bool,
    /// Packets serialized onto the link (telemetry; no-op when disabled).
    pub(in crate::sim) tx_pkts: Counter,
    /// Bytes serialized onto the link.
    pub(in crate::sim) tx_bytes: Counter,
    /// Interned trace label of this port's queue/link track.
    pub(in crate::sim) trace_label: u32,
}

/// Cached per-tenant telemetry handles (one registry lookup per tenant,
/// not per packet).
pub(in crate::sim) struct TenantMetrics {
    pub(in crate::sim) sent_pkts: Counter,
    pub(in crate::sim) delivered_pkts: Counter,
    pub(in crate::sim) delivered_bytes: Counter,
    pub(in crate::sim) dropped_pkts: Counter,
    pub(in crate::sim) fct_ns: Histogram,
}

/// Per-node port tables paired with the `port_of[node][neighbor raw id]
/// -> port index` maps.
pub(in crate::sim) type PortTables = (Vec<Vec<Port>>, Vec<BTreeMap<u32, usize>>);

/// Build every output port of every node: one scheduler-model queue per
/// link (wrapped with instrumentation when telemetry or tracing is live),
/// plus the neighbor-to-port maps.
pub(in crate::sim) fn build_ports(
    topo: &Topology,
    cfg: &SimConfig,
    joint: Option<&JointPolicy>,
) -> Result<PortTables, QvisorError> {
    let mut ports = Vec::with_capacity(topo.node_count());
    let mut port_of = Vec::with_capacity(topo.node_count());
    for node in topo.nodes() {
        let kind = match (node.kind, cfg.host_scheduler) {
            (NodeKind::Host, Some(host_kind)) => host_kind,
            _ => cfg.scheduler,
        };
        let mut node_ports = Vec::new();
        let mut map = BTreeMap::new();
        for link in topo.out_links(node.id) {
            let label = format!("n{}.p{}", node.id.0, node_ports.len());
            let base = make_queue_of(kind, cfg, joint)?;
            let instrument =
                cfg.telemetry.is_enabled() || cfg.tracer.is_enabled() || cfg.monitor.is_enabled();
            let queue: Box<dyn PacketQueue> = if instrument {
                Box::new(
                    InstrumentedQueue::with_tracer(base, &cfg.telemetry, &cfg.tracer, &label)
                        .with_monitor(&cfg.monitor),
                )
            } else {
                base
            };
            let link_labels = [("link", label.as_str())];
            map.insert(link.to.0, node_ports.len());
            node_ports.push(Port {
                to: link.to,
                rate_bps: link.rate_bps,
                delay: link.delay,
                queue,
                busy: false,
                tx_pkts: cfg.telemetry.counter("net_link_tx_pkts", &link_labels),
                tx_bytes: cfg.telemetry.counter("net_link_tx_bytes", &link_labels),
                trace_label: cfg.tracer.intern(&label),
            });
        }
        ports.push(node_ports);
        port_of.push(map);
    }
    Ok((ports, port_of))
}

pub(in crate::sim) fn make_queue_of(
    kind: SchedulerKind,
    cfg: &SimConfig,
    joint: Option<&JointPolicy>,
) -> Result<Box<dyn PacketQueue>, QvisorError> {
    Ok(match kind {
        SchedulerKind::Fifo => Box::new(FifoQueue::new(cfg.buffer)),
        SchedulerKind::Pifo => Box::new(PifoQueue::new(cfg.buffer)),
        SchedulerKind::SpPifo { queues } => Box::new(StrictPriorityBank::new(
            SpPifoMapper::new(queues),
            cfg.buffer,
        )),
        SchedulerKind::StrictStatic { queues, span } => match joint {
            Some(j) => Backend::StrictPriority {
                queues,
                capacity: cfg.buffer,
                adaptation: SpAdaptation::BandedStatic,
            }
            .build(j)?,
            None => Box::new(StrictPriorityBank::new(
                StaticRangeMapper::new(span.min, span.max, queues),
                cfg.buffer,
            )),
        },
        SchedulerKind::Aifo { window, burst } => {
            if cfg.buffer.bytes == u64::MAX {
                return Err(QvisorError::Deployment(
                    "AIFO requires a finite buffer".into(),
                ));
            }
            Box::new(AifoQueue::new(cfg.buffer, window, burst))
        }
        SchedulerKind::FairTree { tenants } => {
            if tenants == 0 {
                return Err(QvisorError::Deployment(
                    "fair tree needs at least one tenant class".into(),
                ));
            }
            let shape = TreeShape::Internal((0..tenants).map(|_| TreeShape::Leaf).collect());
            let mut vtimes = vec![0u64; tenants as usize];
            let classifier = move |p: &Packet| {
                let class = (p.tenant.0 % tenants) as usize;
                vtimes[class] += 1;
                TreePath {
                    steps: vec![PathStep {
                        child: class,
                        rank: vtimes[class],
                    }],
                    leaf_rank: p.txf_rank,
                }
            };
            Box::new(PifoTree::new(&shape, classifier, cfg.buffer))
        }
    })
}
