//! Simulation results.

use qvisor_sim::{Nanos, NodeId, TenantId};
use qvisor_transport::FctCollector;
use std::collections::BTreeMap;

/// Per-tenant traffic accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantTraffic {
    /// Payload packets injected by senders.
    pub sent_pkts: u64,
    /// Payload packets delivered to their destination host.
    pub delivered_pkts: u64,
    /// Payload bytes delivered (deduplicated for reliable flows).
    pub delivered_bytes: u64,
    /// Packets lost in queues (rejected or evicted).
    pub dropped_pkts: u64,
    /// Datagrams that met their deadline.
    pub deadline_met: u64,
    /// Datagrams that missed their deadline.
    pub deadline_missed: u64,
}

impl TenantTraffic {
    /// Fraction of deadline-carrying datagrams on time (`None` if none).
    pub fn deadline_hit_rate(&self) -> Option<f64> {
        let total = self.deadline_met + self.deadline_missed;
        (total > 0).then(|| self.deadline_met as f64 / total as f64)
    }
}

/// Everything a simulation run produces.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Completed reliable flows.
    pub fct: FctCollector,
    /// Per-tenant counters.
    pub tenants: BTreeMap<TenantId, TenantTraffic>,
    /// Events processed.
    pub events: u64,
    /// Simulation clock at the end of the run.
    pub end_time: Nanos,
    /// Reliable flows that did not complete before the horizon.
    pub incomplete_flows: u64,
    /// Packets dropped by the pre-processor (unknown tenants under the
    /// `Drop` action).
    pub preproc_dropped: u64,
    /// Declared-range violations seen by the runtime monitor.
    pub monitor_violations: u64,
    /// Packets dropped by fault injection.
    pub random_losses: u64,
    /// Times the runtime adapter re-synthesized and hot-reloaded the
    /// pre-processor.
    pub reconfigurations: u64,
    /// Packets dropped at each node (queue rejections/evictions plus
    /// fault-injection losses), for congestion hotspot analysis.
    pub node_drops: BTreeMap<NodeId, u64>,
    /// Per-tenant delivered bytes *within* each sampling window, when
    /// `SimConfig::sample_interval` is set: `(window end, tenant, bytes)`.
    pub samples: Vec<(Nanos, TenantId, u64)>,
}

impl SimReport {
    /// Counters for one tenant (zeros if never seen).
    pub fn tenant(&self, t: TenantId) -> TenantTraffic {
        self.tenants.get(&t).copied().unwrap_or_default()
    }

    /// The nodes with the most drops, busiest first (congestion hotspots).
    pub fn hotspots(&self, top: usize) -> Vec<(NodeId, u64)> {
        let mut v: Vec<(NodeId, u64)> = self.node_drops.iter().map(|(&n, &d)| (n, d)).collect();
        v.sort_by_key(|&(n, d)| (std::cmp::Reverse(d), n));
        v.truncate(top);
        v
    }

    /// A tenant's goodput time series in bits per second per window
    /// (empty without sampling).
    pub fn goodput_series_bps(&self, t: TenantId, interval: Nanos) -> Vec<(Nanos, f64)> {
        let secs = interval.as_secs_f64();
        self.samples
            .iter()
            .filter(|&&(_, tenant, _)| tenant == t)
            .map(|&(at, _, bytes)| (at, bytes as f64 * 8.0 / secs))
            .collect()
    }

    /// Aggregate goodput of a tenant over the run, bits per second.
    pub fn tenant_goodput_bps(&self, t: TenantId) -> f64 {
        let secs = self.end_time.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.tenant(t).delivered_bytes as f64 * 8.0 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_rate() {
        let t = TenantTraffic {
            deadline_met: 3,
            deadline_missed: 1,
            ..TenantTraffic::default()
        };
        assert_eq!(t.deadline_hit_rate(), Some(0.75));
        assert_eq!(TenantTraffic::default().deadline_hit_rate(), None);
    }

    #[test]
    fn goodput() {
        let mut r = SimReport {
            end_time: Nanos::from_secs(2),
            ..SimReport::default()
        };
        r.tenants.insert(
            TenantId(1),
            TenantTraffic {
                delivered_bytes: 250_000_000,
                ..TenantTraffic::default()
            },
        );
        assert!((r.tenant_goodput_bps(TenantId(1)) - 1e9).abs() < 1.0);
        assert_eq!(r.tenant_goodput_bps(TenantId(9)), 0.0);
    }
}
