//! Property-based tests (proptest) on the core data structures and the
//! invariants the whole system rests on.

use proptest::prelude::*;
use qvisor::core::{synthesize, Policy, RankTransform, SynthConfig, TenantSpec, TransformChain};
use qvisor::ranking::RankRange;
use qvisor::scheduler::{
    CalendarQueue, Capacity, Enqueue, FifoQueue, PacketQueue, PathStep, PifoQueue, PifoTree,
    QueueMapper, SpPifoMapper, TreePath, TreeShape,
};
use qvisor::sim::{EventQueue, FlowId, Nanos, NodeId, Packet, TenantId};

fn packet(seq: u64, rank: u64, size: u32) -> Packet {
    let mut p = Packet::data(
        FlowId(1),
        TenantId(0),
        seq,
        size,
        NodeId(0),
        NodeId(1),
        rank,
        Nanos::ZERO,
    );
    p.txf_rank = rank;
    p
}

proptest! {
    /// A PIFO must always emit packets in non-decreasing rank order,
    /// whatever the arrival order and capacity pressure.
    #[test]
    fn pifo_dequeue_order_is_sorted(
        ranks in proptest::collection::vec(0u64..1_000, 1..200),
        cap_pkts in 1u64..64,
    ) {
        let mut q = PifoQueue::new(Capacity::packets(cap_pkts, 100));
        for (i, &r) in ranks.iter().enumerate() {
            q.enqueue(packet(i as u64, r, 100), Nanos::ZERO);
        }
        let out: Vec<u64> = std::iter::from_fn(|| q.dequeue(Nanos::ZERO))
            .map(|p| p.txf_rank)
            .collect();
        prop_assert!(out.windows(2).all(|w| w[0] <= w[1]), "unsorted: {out:?}");
        prop_assert!(out.len() <= cap_pkts as usize);
    }

    /// PIFO conservation: every offered packet is either still queued,
    /// dequeued, or reported dropped — none vanish, none duplicate.
    #[test]
    fn pifo_conserves_packets(
        ops in proptest::collection::vec((0u64..500, prop::bool::ANY), 1..300),
    ) {
        let mut q = PifoQueue::new(Capacity::packets(16, 100));
        let mut offered = 0u64;
        let mut dropped = 0u64;
        let mut dequeued = 0u64;
        for (i, (rank, do_dequeue)) in ops.into_iter().enumerate() {
            offered += 1;
            dropped += q.enqueue(packet(i as u64, rank, 100), Nanos::ZERO)
                .dropped().len() as u64;
            if do_dequeue && q.dequeue(Nanos::ZERO).is_some() {
                dequeued += 1;
            }
        }
        prop_assert_eq!(offered, dropped + dequeued + q.len() as u64);
    }

    /// FIFO byte accounting never drifts.
    #[test]
    fn fifo_byte_accounting(
        sizes in proptest::collection::vec(1u32..2_000, 1..100),
    ) {
        let mut q = FifoQueue::new(Capacity::bytes(10_000));
        let mut expect = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            if let Enqueue::Accepted = q.enqueue(packet(i as u64, 0, s), Nanos::ZERO) {
                expect += s as u64;
            }
            if i % 3 == 0 {
                if let Some(p) = q.dequeue(Nanos::ZERO) {
                    expect -= p.size as u64;
                }
            }
            prop_assert_eq!(q.bytes(), expect);
        }
    }

    /// SP-PIFO bounds stay sorted under arbitrary rank streams.
    #[test]
    fn sp_pifo_bounds_sorted(
        ranks in proptest::collection::vec(0u64..100_000, 1..500),
        queues in 2usize..12,
    ) {
        let mut m = SpPifoMapper::new(queues);
        for r in ranks {
            let q = m.map(r);
            prop_assert!(q < queues);
            let b = m.bounds();
            prop_assert!(b.windows(2).all(|w| w[0] <= w[1]), "bounds {b:?}");
        }
    }

    /// Every transform is monotone: it can never invert the relative order
    /// of two ranks of the same tenant (intra-tenant scheduling must
    /// survive the pre-processor, §3.2).
    #[test]
    fn transforms_are_monotone(
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
        min in 0u64..1_000,
        width in 1u64..100_000,
        levels in 1u64..512,
        every in 1u64..16,
        offset in 0u64..1_000,
    ) {
        let ops = vec![
            RankTransform::Normalize {
                input: RankRange::new(min, min + width),
                levels,
            },
            RankTransform::Stride { every, width: 1, offset: offset % every },
            RankTransform::Shift { offset },
        ];
        let chain = TransformChain::from_ops(ops);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(chain.apply(lo) <= chain.apply(hi));
    }

    /// Chain output ranges are exact for monotone chains: applying the
    /// chain to anything in the declared input range lands within the
    /// computed output range.
    #[test]
    fn chain_output_range_is_sound(
        min in 0u64..1_000,
        width in 1u64..10_000,
        levels in 1u64..64,
        shift in 0u64..10_000,
        sample in 0u64..20_000,
    ) {
        let input = RankRange::new(min, min + width);
        let chain = TransformChain::from_ops(vec![
            RankTransform::Normalize { input, levels },
            RankTransform::Shift { offset: shift },
        ]);
        let out = chain.output_range(input);
        let x = input.clamp(sample);
        let y = chain.apply(x);
        prop_assert!(out.contains(y), "{y} outside {out}");
    }

    /// The event queue pops in time order with FIFO tie-breaks, for any
    /// schedule of pushes.
    #[test]
    fn event_queue_total_order(
        times in proptest::collection::vec(0u64..1_000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos(t), i);
        }
        let mut last: Option<(Nanos, usize)> = None;
        while let Some((at, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    prop_assert!(idx > lidx, "FIFO tie-break violated");
                }
            }
            prop_assert_eq!(Nanos(times[idx]), at);
            last = Some((at, idx));
        }
    }

    /// A calendar queue with monotone (virtual-clock) arrivals dequeues in
    /// exact rank order, however enqueues and dequeues interleave.
    #[test]
    fn calendar_exact_for_monotone_ranks(
        increments in proptest::collection::vec(0u64..100, 1..300),
        buckets in 2usize..32,
        width in 1u64..200,
        drain_every in 1usize..6,
    ) {
        let mut q = CalendarQueue::new(buckets, width, Capacity::UNBOUNDED);
        let mut rank = 0u64;
        let mut expect = std::collections::VecDeque::new();
        for (i, inc) in increments.iter().enumerate() {
            rank += inc;
            q.enqueue(packet(i as u64, rank, 100), Nanos::ZERO);
            expect.push_back(rank);
            if i % drain_every == 0 {
                let got = q.dequeue(Nanos::ZERO).unwrap().txf_rank;
                prop_assert_eq!(got, expect.pop_front().unwrap());
            }
        }
        while let Some(p) = q.dequeue(Nanos::ZERO) {
            prop_assert_eq!(p.txf_rank, expect.pop_front().unwrap());
        }
        prop_assert!(expect.is_empty());
    }

    /// PIFO trees conserve packets and never emit more than admitted.
    #[test]
    fn pifo_tree_conserves_packets(
        ops in proptest::collection::vec((0u64..100, 0u64..4, prop::bool::ANY), 1..200),
    ) {
        let shape = TreeShape::Internal(vec![
            TreeShape::Leaf, TreeShape::Leaf, TreeShape::Leaf, TreeShape::Leaf,
        ]);
        let mut vt = [0u64; 4];
        let classifier = move |p: &qvisor::sim::Packet| {
            let class = (p.flow.0 % 4) as usize;
            vt[class] += 1;
            TreePath {
                steps: vec![PathStep { child: class, rank: vt[class] }],
                leaf_rank: p.txf_rank,
            }
        };
        let mut tree = PifoTree::new(&shape, classifier, Capacity::packets(32, 100));
        let mut admitted = 0u64;
        let mut dequeued = 0u64;
        for (i, (rank, class, drain)) in ops.into_iter().enumerate() {
            let mut p = packet(i as u64, rank, 100);
            p.flow = qvisor::sim::FlowId(class);
            if tree.enqueue(p, Nanos::ZERO).accepted() {
                admitted += 1;
            }
            if drain && tree.dequeue(Nanos::ZERO).is_some() {
                dequeued += 1;
            }
        }
        while tree.dequeue(Nanos::ZERO).is_some() {
            dequeued += 1;
        }
        prop_assert_eq!(admitted, dequeued);
        prop_assert_eq!(tree.len(), 0);
        prop_assert_eq!(tree.bytes(), 0);
    }

    /// Policy parsing round-trips through Display for arbitrary shapes.
    #[test]
    fn policy_display_roundtrip(
        shape in proptest::collection::vec(
            (proptest::collection::vec((0u8..3, 1u32..5), 1..4),),
            1..4,
        ),
    ) {
        // Build a policy string from the random shape: levels of groups of
        // weighted tenants with unique names.
        let mut name = 0usize;
        let levels: Vec<String> = shape.iter().map(|(groups,)| {
            let gs: Vec<String> = groups.iter().map(|&(_, w)| {
                name += 1;
                if w == 1 { format!("t{name}") } else { format!("t{name}:{w}") }
            }).collect();
            gs.join(" + ")
        }).collect();
        let text = levels.join(" >> ");
        let p = Policy::parse(&text).unwrap();
        prop_assert_eq!(p.to_string(), text);
        let p2 = Policy::parse(&p.to_string()).unwrap();
        prop_assert_eq!(p, p2);
    }

    /// Synthesis invariant: for any number of strictly-stacked tenants with
    /// random ranges, adjacent bands never overlap and every tenant's
    /// output stays inside the joint span.
    #[test]
    fn strict_synthesis_always_isolates(
        ranges in proptest::collection::vec((0u64..10_000, 1u64..100_000), 1..6),
        default_levels in 1u64..64,
    ) {
        let specs: Vec<TenantSpec> = ranges
            .iter()
            .enumerate()
            .map(|(i, &(min, width))| {
                TenantSpec::new(
                    TenantId(i as u16 + 1),
                    format!("T{}", i + 1),
                    "alg",
                    RankRange::new(min, min + width),
                )
            })
            .collect();
        let text = specs
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
            .join(" >> ");
        let policy = Policy::parse(&text).unwrap();
        let config = SynthConfig { default_levels, ..SynthConfig::default() };
        let joint = synthesize(&specs, &policy, config).unwrap();
        let span = joint.output_span();
        let mut prev_max: Option<u64> = None;
        for spec in &specs {
            let out = joint.chain(spec.id).unwrap().output_range(spec.range);
            prop_assert!(span.contains(out.min) && span.contains(out.max));
            if let Some(pm) = prev_max {
                prop_assert!(pm < out.min, "bands overlap: {pm} vs {out}");
            }
            prev_max = Some(out.max);
        }
        prop_assert!(qvisor::core::analyze(&joint).all_guarantees_hold());
    }
}
