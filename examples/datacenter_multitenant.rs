//! A multi-tenant data-center fabric (the paper's §2 scenario).
//!
//! Three tenants share a leaf–spine fabric: an interactive pFabric tenant,
//! a deadline-constrained EDF tenant sending CBR streams, and a background
//! fair-queueing tenant. The operator policy is `T1 >> T2 + T3`. We run
//! the same workload twice — naive shared PIFO vs QVISOR — and compare.
//!
//! Run with: `cargo run --release --example datacenter_multitenant`

use qvisor::core::{SynthConfig, TenantSpec};
use qvisor::netsim::{NewCbr, NewFlow, QvisorSetup, SchedulerKind, SimConfig, Simulation};
use qvisor::ranking::{ByteCountFq, Edf, PFabric, RankRange};
use qvisor::sim::{gbps, Nanos, SimRng, TenantId};
use qvisor::topology::{LeafSpine, LeafSpineConfig};
use qvisor::transport::SizeBucket;
use qvisor::workloads::{EmpiricalCdf, FlowSizeDist, PoissonFlowGen};

const T1: TenantId = TenantId(1); // interactive, pFabric
const T2: TenantId = TenantId(2); // deadline-constrained, EDF
const T3: TenantId = TenantId(3); // background, FQ

fn build_and_run(qvisor: bool) -> qvisor::netsim::SimReport {
    let fabric = LeafSpine::build(&LeafSpineConfig::small());
    let hosts = fabric.all_hosts();

    let mut cfg = SimConfig {
        seed: 42,
        scheduler: SchedulerKind::Pifo,
        horizon: Nanos::from_millis(80),
        ..SimConfig::default()
    };
    if qvisor {
        // Declared ranges match what the rank functions actually emit for
        // this workload (web-search/10 flows top out near 2 MB remaining;
        // EDF slack is at most the 500 us deadline offset). Declaring far
        // wider ranges would waste quantization levels — the analyzer's
        // "granularity reduced" warning.
        let specs = vec![
            TenantSpec::new(T1, "T1", "pFabric", RankRange::new(0, 2_000)).with_levels(256),
            TenantSpec::new(T2, "T2", "EDF", RankRange::new(0, 500)).with_levels(64),
            TenantSpec::new(T3, "T3", "FQ", RankRange::new(0, 1_000)).with_levels(16),
        ];
        cfg.qvisor = Some(QvisorSetup {
            specs,
            policy: "T1 >> T2 + T3".into(),
            synth: SynthConfig::default(),
            unknown: qvisor::core::UnknownTenantAction::BestEffort,
            scope: Default::default(),
            monitor: None,
        });
    }

    let mut sim = Simulation::new(fabric.topology.clone(), cfg).expect("valid config");
    sim.register_rank_fn(T1, Box::new(PFabric::default_datacenter()));
    sim.register_rank_fn(T2, Box::new(Edf::default_datacenter()));
    sim.register_rank_fn(T3, Box::new(ByteCountFq::new(1_000, 1_000)));

    let rng = SimRng::seed_from(7);

    // Tenant 1: web-search flows at moderate load.
    let sizes = EmpiricalCdf::web_search().scaled(1, 10);
    let rate =
        qvisor::workloads::arrival_rate_for_load(0.4, hosts.len(), gbps(1), sizes.mean_bytes());
    let flows = PoissonFlowGen {
        tenant: T1,
        hosts: &hosts,
        sizes: &sizes,
        rate_flows_per_sec: rate,
    }
    .generate(300, &mut rng.derive(1));
    for f in &flows {
        sim.add_generated(f);
    }

    // Tenant 2: four CBR streams with 500 us deadlines.
    for i in 0..4u64 {
        sim.add_cbr(NewCbr {
            tenant: T2,
            src: hosts[i as usize],
            dst: hosts[hosts.len() - 1 - i as usize],
            rate_bps: 200_000_000,
            pkt_size: 1_500,
            start: Nanos::ZERO,
            stop: Nanos::from_millis(40),
            deadline_offset: Nanos::from_micros(500),
        });
    }

    // Tenant 3: a few background elephants.
    for i in 0..3u64 {
        sim.add_flow(NewFlow::new(
            T3,
            hosts[(2 * i + 1) as usize % hosts.len()],
            hosts[(2 * i + 6) as usize % hosts.len()],
            2_000_000,
            Nanos::from_millis(i),
        ));
    }

    sim.run()
}

fn main() {
    println!("running naive shared PIFO (no QVISOR)...");
    let naive = build_and_run(false);
    println!("running QVISOR with policy  T1 >> T2 + T3 ...\n");
    let qv = build_and_run(true);

    let fct = |r: &qvisor::netsim::SimReport| {
        r.fct
            .mean_fct_ms(Some(T1), SizeBucket::SMALL)
            .unwrap_or(f64::NAN)
    };
    let deadline = |r: &qvisor::netsim::SimReport| {
        r.tenant(T2)
            .deadline_hit_rate()
            .map(|x| 100.0 * x)
            .unwrap_or(f64::NAN)
    };

    println!("{:<34}{:>14}{:>14}", "", "naive PIFO", "QVISOR");
    println!(
        "{:<34}{:>14.3}{:>14.3}",
        "T1 small-flow mean FCT (ms)",
        fct(&naive),
        fct(&qv)
    );
    println!(
        "{:<34}{:>13.1}%{:>13.1}%",
        "T2 deadline hit rate",
        deadline(&naive),
        deadline(&qv)
    );
    println!(
        "{:<34}{:>14}{:>14}",
        "T3 delivered packets",
        naive.tenant(T3).delivered_pkts,
        qv.tenant(T3).delivered_pkts
    );
    println!(
        "{:<34}{:>14}{:>14}",
        "events processed", naive.events, qv.events
    );
    println!(
        "\nWith QVISOR, T1 is isolated on top (better small-flow FCTs) while \
         T2 keeps meeting deadlines in its shared band."
    );
}
