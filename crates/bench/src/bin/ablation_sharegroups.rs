//! Ablation: fairness of the `+` operator as share groups grow.
//!
//! N identical closed-loop tenants share one bottleneck under
//! `T1 + T2 + ... + TN`; we report each group's Jain fairness index and
//! aggregate utilization, and compare against the same tenants thrown
//! naively (untransformed) onto the PIFO.
//!
//! Usage: cargo run -p qvisor-bench --release --bin ablation_sharegroups
//!        [-- --telemetry PREFIX]   write PREFIX-n<N>_{qvisor,naive}.jsonl

use qvisor_bench::snapshot;
use qvisor_core::{SynthConfig, TenantSpec, UnknownTenantAction};
use qvisor_netsim::{NewFlow, QvisorSetup, SchedulerKind, SimConfig, Simulation};
use qvisor_ranking::{ByteCountFq, RankRange};
use qvisor_sim::{gbps, jain_fairness, Nanos, TenantId};
use qvisor_telemetry::Telemetry;
use qvisor_topology::Dumbbell;

fn run(n: usize, qvisor: bool, telemetry: &Telemetry) -> (f64, f64) {
    let d = Dumbbell::build(n, gbps(1), gbps(1), Nanos::from_micros(1));
    let mut cfg = SimConfig {
        seed: 9,
        horizon: Nanos::from_millis(120),
        scheduler: SchedulerKind::Pifo,
        telemetry: telemetry.clone(),
        ..SimConfig::default()
    };
    if qvisor {
        let specs: Vec<TenantSpec> = (1..=n)
            .map(|i| {
                TenantSpec::new(
                    TenantId(i as u16),
                    format!("T{i}"),
                    "FQ",
                    RankRange::new(0, 14_000),
                )
                .with_levels(64)
            })
            .collect();
        let policy = (1..=n)
            .map(|i| format!("T{i}"))
            .collect::<Vec<_>>()
            .join(" + ");
        cfg.qvisor = Some(QvisorSetup {
            specs,
            policy,
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope: Default::default(),
            monitor: None,
        });
    }
    let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
    for i in 1..=n {
        let t = TenantId(i as u16);
        sim.register_rank_fn(t, Box::new(ByteCountFq::new(1_460, 14_000)));
        sim.add_flow(NewFlow::new(
            t,
            d.senders[i - 1],
            d.receivers[i - 1],
            20_000_000,
            Nanos::ZERO,
        ));
    }
    let r = sim.run();
    let bytes: Vec<f64> = (1..=n)
        .map(|i| r.tenant(TenantId(i as u16)).delivered_bytes as f64)
        .collect();
    let jain = jain_fairness(&bytes).unwrap_or(f64::NAN);
    let util = bytes.iter().sum::<f64>() * 8.0 / r.end_time.as_secs_f64() / 1e9;
    (jain, util)
}

fn main() {
    println!("Ablation: share-group size (N elephants, one 1 Gbps bottleneck)");
    println!(
        "{:>4}{:>22}{:>22}{:>14}",
        "N", "Jain (QVISOR +)", "Jain (naive PIFO)", "util (QVISOR)"
    );
    let args: Vec<String> = std::env::args().skip(1).collect();
    let prefix = args.iter().position(|a| a == "--telemetry").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("missing value after --telemetry");
            std::process::exit(2);
        })
    });
    for n in [2usize, 3, 4, 6, 8] {
        let make = || match prefix {
            Some(_) => Telemetry::enabled(),
            None => Telemetry::disabled(),
        };
        let tq = make();
        let tn = make();
        let (jq, uq) = run(n, true, &tq);
        let (jn, _) = run(n, false, &tn);
        println!("{n:>4}{jq:>22.4}{jn:>22.4}{uq:>13.2}x");
        if let Some(prefix) = &prefix {
            for (telemetry, tag) in [(&tq, format!("n{n}_qvisor")), (&tn, format!("n{n}_naive"))] {
                eprintln!(
                    "  wrote {}",
                    snapshot::write_snapshot(telemetry, prefix, &tag)
                );
            }
        }
    }
    println!(
        "\nQVISOR's stride interleaving holds Jain ~1.0 as the group grows; \
         naive sharing depends on accidental rank alignment."
    );
}
