//! The control plane: admission, resynthesis, and snapshot publication.
//!
//! [`ControlPlane`] is a plain single-threaded library struct — the daemon
//! runs one on its control thread (serializing all mutations), and the
//! `serve_load` harness runs a second one to replay the accepted-mutation
//! log sequentially and compare final state byte-for-byte.
//!
//! Admission is side-effect free: a submission is synthesized and verified
//! against a *candidate* deployment document first, and only an accepted
//! submission touches the [`RuntimeAdapter`] or the store. Every rejection
//! carries the full structured QV-* diagnostic report plus the exact
//! candidate document (`effective_config`), so `qvisor check` on that
//! document reproduces the same diagnostics.

use std::sync::Arc;

use qvisor_core::config_api::{DeploymentConfig, TenantConfig};
use qvisor_core::{
    verify, Adaptation, JointPolicy, MonitorConfig, RuntimeAdapter, Severity, SpecPaths, TenantSpec,
};
use qvisor_ranking::RankRange;
use qvisor_sim::json::Value;
use qvisor_sim::TenantId;
use qvisor_telemetry::Telemetry;

use crate::registry::{ChainSnapshot, SnapshotCell};
use crate::store::{LogEntry, PolicyStore};

/// The daemon's single-threaded brain: policy store + runtime adapter +
/// published snapshot.
#[derive(Debug)]
pub struct ControlPlane {
    store: PolicyStore,
    adapter: RuntimeAdapter,
    cell: Arc<SnapshotCell>,
    telemetry: Telemetry,
    deny_warnings: bool,
    rejected: u64,
}

impl ControlPlane {
    /// Build a control plane over `config`'s tenant universe, publishing
    /// snapshots into `cell`. No tenant is live initially; the published
    /// snapshot is the empty version-1 world.
    pub fn new(
        config: &DeploymentConfig,
        deny_warnings: bool,
        cell: Arc<SnapshotCell>,
    ) -> Result<ControlPlane, String> {
        let store = PolicyStore::new(config)?;
        let (specs, policy, synth) = config
            .build()
            .map_err(|e| format!("universe config: {e}"))?;
        let telemetry = Telemetry::enabled();
        let adapter = RuntimeAdapter::new(specs, policy, synth, MonitorConfig::default())
            .with_telemetry(&telemetry);
        cell.store(ChainSnapshot::empty());
        Ok(ControlPlane {
            store,
            adapter,
            cell,
            telemetry,
            deny_warnings,
            rejected: 0,
        })
    }

    /// The shared snapshot cell (what reader sessions load from).
    pub fn cell(&self) -> Arc<SnapshotCell> {
        Arc::clone(&self.cell)
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<ChainSnapshot> {
        self.cell.load()
    }

    /// Was this submission gate-rejected or otherwise refused? (Counts
    /// only admission rejections, not protocol errors.)
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }

    fn reject(&mut self, tenant: &str, reason: String) -> Value {
        self.rejected += 1;
        Value::object()
            .set("ok", false)
            .set("result", "rejected")
            .set("tenant", tenant)
            .set("version", self.adapter.transform_version())
            .set("reason", reason)
    }

    /// Admit or reject one `submit-policy` request. Returns the full
    /// response value (one protocol line).
    pub fn submit(&mut self, t: TenantConfig) -> Value {
        // Structural checks against the fixed universe.
        let expected_id = match self.store.universe_entry(&t.name) {
            Some(entry) => entry.id,
            None => {
                return self.reject(
                    &t.name,
                    format!(
                        "tenant '{}' is not in the universe (the tenant set is fixed at daemon start)",
                        t.name
                    ),
                );
            }
        };
        if expected_id != t.id {
            return self.reject(
                &t.name,
                format!("tenant '{}' has id {expected_id}, not {}", t.name, t.id),
            );
        }
        if t.rank_min > t.rank_max {
            return self.reject(
                &t.name,
                format!(
                    "tenant '{}' declares an empty rank range [{}, {}]",
                    t.name, t.rank_min, t.rank_max
                ),
            );
        }
        if t.levels == Some(0) {
            return self.reject(
                &t.name,
                format!("tenant '{}' declares zero quantization levels", t.name),
            );
        }
        // Candidate document: current live set plus this submission.
        let Some(candidate) = self.store.effective_config_with(&t) else {
            return self.reject(
                &t.name,
                "no candidate tenant is named in the operator policy".to_string(),
            );
        };
        // Admission gate: synthesize + verify the candidate, touching
        // nothing on failure.
        let joint = match candidate.synthesize() {
            Ok(joint) => joint,
            Err(e) => return self.reject(&t.name, format!("synthesis failed: {e}")),
        };
        let report = verify(&joint, &SpecPaths::config());
        if report.gate_fails(self.deny_warnings) {
            let diags: Vec<Value> = report.diagnostics.iter().map(|d| d.to_value()).collect();
            let errors = report.count(Severity::Error);
            let warnings = report.count(Severity::Warning);
            let config_value = Value::parse(&candidate.to_json())
                .expect("candidate config serialisation is well-formed JSON");
            return self
                .reject(&t.name, "verification gate failed".to_string())
                .set("diagnostics", Value::from(diags))
                .set("errors", errors)
                .set("warnings", warnings)
                .set("effective_config", config_value);
        }
        // Commit: replace the spec, resynthesize through the adapter,
        // record the mutation, publish the new snapshot.
        let mut spec = TenantSpec::new(
            TenantId(t.id),
            t.name.clone(),
            t.algorithm.clone(),
            RankRange::new(t.rank_min, t.rank_max),
        );
        spec.levels = t.levels;
        let previous = self
            .adapter
            .specs()
            .iter()
            .find(|s| s.id == spec.id)
            .cloned();
        self.adapter.update_spec(spec);
        let mut active = self.store.live_ids();
        if !active.contains(&TenantId(t.id)) {
            // Insert in universe order (live_ids is universe-ordered).
            let pos = self
                .store
                .universe()
                .iter()
                .filter(|u| self.store.is_live(&u.name) || u.name == t.name)
                .position(|u| u.name == t.name)
                .expect("submitted tenant is in the universe");
            active.insert(pos, TenantId(t.id));
        }
        let adaptation = Adaptation {
            active,
            tightened: vec![],
        };
        let deployed = match self.adapter.apply(&adaptation) {
            Ok(Some(joint)) => joint,
            Ok(None) => {
                if let Some(prev) = previous {
                    self.adapter.update_spec(prev);
                }
                return Value::object().set("ok", false).set(
                    "error",
                    "internal: admitted submission produced an empty deployment",
                );
            }
            Err(e) => {
                if let Some(prev) = previous {
                    self.adapter.update_spec(prev);
                }
                return Value::object()
                    .set("ok", false)
                    .set("error", format!("internal: resynthesis diverged: {e}"));
            }
        };
        self.store.commit_submit(t.clone());
        self.publish(Some(&deployed));
        let snap = self.cell.load();
        Value::object()
            .set("ok", true)
            .set("result", "accepted")
            .set("tenant", t.name.as_str())
            .set("version", snap.version)
            .set("fingerprint", snap.fingerprint.as_str())
    }

    /// Withdraw a live tenant; its rank space is reclaimed by resynthesis.
    pub fn withdraw(&mut self, name: &str) -> Value {
        if !self.store.is_live(name) {
            return crate::protocol::error_response(&format!("tenant '{name}' is not live"));
        }
        let id = TenantId(self.store.universe_entry(name).expect("live ⊆ universe").id);
        let active: Vec<TenantId> = self
            .store
            .live_ids()
            .into_iter()
            .filter(|t| *t != id)
            .collect();
        let adaptation = Adaptation {
            active,
            tightened: vec![],
        };
        let deployed = match self.adapter.apply(&adaptation) {
            Ok(joint) => joint,
            Err(e) => {
                return Value::object()
                    .set("ok", false)
                    .set("error", format!("internal: resynthesis diverged: {e}"));
            }
        };
        self.store.commit_withdraw(name);
        self.publish(deployed.as_ref());
        let snap = self.cell.load();
        Value::object()
            .set("ok", true)
            .set("result", "withdrawn")
            .set("tenant", name)
            .set("version", snap.version)
            .set("live", self.store.live_count())
    }

    /// Build and publish the snapshot for the current committed state.
    fn publish(&mut self, joint: Option<&JointPolicy>) {
        let policy = self
            .store
            .projected_policy()
            .map(|p| p.to_string())
            .unwrap_or_default();
        let chains = joint
            .map(|j| ChainSnapshot::entries_from(j, &j.specs))
            .unwrap_or_default();
        let snap = ChainSnapshot::build(
            self.adapter.transform_version(),
            policy,
            self.store.live_names(),
            self.store.log().len() as u64,
            chains,
        );
        self.cell.store(snap);
    }

    /// The `status` response line.
    pub fn status_value(&self) -> Value {
        let snap = self.cell.load();
        Value::object()
            .set("ok", true)
            .set("result", "status")
            .set("version", snap.version)
            .set("live", self.store.live_count())
            .set("accepted", self.store.log().len())
            .set("rejected", self.rejected)
            .set("policy", self.store.operator_policy())
    }

    /// The `get-log` response line (accepted mutations, commit order).
    pub fn log_value(&self) -> Value {
        let entries: Vec<Value> = self.store.log().iter().map(LogEntry::to_value).collect();
        Value::object()
            .set("ok", true)
            .set("result", "log")
            .set("entries", Value::from(entries))
    }

    /// The `shutdown` acknowledgement line.
    pub fn shutdown_value(&self) -> Value {
        let snap = self.cell.load();
        Value::object()
            .set("ok", true)
            .set("result", "shutdown")
            .set("version", snap.version)
            .set("accepted", self.store.log().len())
            .set("rejected", self.rejected)
    }

    /// The adapter registry's raw JSONL export (empty when the telemetry
    /// feature is compiled out). The `metrics` exposition renders this
    /// plus the daemon's own request/admission stats.
    pub fn telemetry_export(&self) -> String {
        self.telemetry.export_jsonl()
    }

    /// One telemetry-stream line: the current registry export wrapped as a
    /// single JSON object (each exported JSONL line becomes one record).
    pub fn telemetry_line(&self) -> String {
        let export = self.telemetry.export_jsonl();
        let records: Vec<Value> = export
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| Value::parse(l).ok())
            .collect();
        Value::object()
            .set("type", "telemetry_snapshot")
            .set("version", self.cell.load().version)
            .set("records", Value::from(records))
            .to_compact()
    }

    /// Rebuild a control plane by replaying an accepted-mutation log
    /// sequentially. Every entry must be re-accepted — the log records
    /// only admitted mutations — so any divergence is an error.
    pub fn replay(
        config: &DeploymentConfig,
        deny_warnings: bool,
        entries: &[LogEntry],
    ) -> Result<ControlPlane, String> {
        let cell = Arc::new(SnapshotCell::default());
        let mut plane = ControlPlane::new(config, deny_warnings, cell)?;
        for (i, entry) in entries.iter().enumerate() {
            let response = match entry {
                LogEntry::Submit(t) => plane.submit(t.clone()),
                LogEntry::Withdraw(name) => plane.withdraw(name),
            };
            if response.get("ok").and_then(Value::as_bool) != Some(true) {
                return Err(format!(
                    "replay diverged at entry {i}: {}",
                    response.to_compact()
                ));
            }
        }
        Ok(plane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> DeploymentConfig {
        DeploymentConfig::from_json(
            r#"{
                "tenants": [
                    {"id": 1, "name": "gold", "algorithm": "pFabric", "rank_min": 0, "rank_max": 999, "levels": 16},
                    {"id": 2, "name": "silver", "algorithm": "EDF", "rank_min": 0, "rank_max": 499},
                    {"id": 3, "name": "bronze", "algorithm": "WFQ", "rank_min": 0, "rank_max": 99}
                ],
                "policy": "gold >> silver + bronze",
                "synth": {"first_rank": 2}
            }"#,
        )
        .unwrap()
    }

    fn tenant(name: &str, cfg: &DeploymentConfig) -> TenantConfig {
        cfg.tenants.iter().find(|t| t.name == name).unwrap().clone()
    }

    fn plane() -> ControlPlane {
        ControlPlane::new(&universe(), false, Arc::new(SnapshotCell::default())).unwrap()
    }

    #[test]
    fn accepted_submissions_bump_the_version_and_publish_chains() {
        let cfg = universe();
        let mut cp = plane();
        assert_eq!(cp.snapshot().version, 1);
        let r = cp.submit(tenant("gold", &cfg));
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(r.get("version").and_then(Value::as_u64), Some(2));
        let snap = cp.snapshot();
        assert_eq!(snap.version, 2);
        assert_eq!(snap.live, vec!["gold"]);
        assert_eq!(snap.chains.len(), 1);
        assert_eq!(snap.policy, "gold");
        ChainSnapshot::verify_canonical(&snap.canonical).unwrap();

        let r = cp.submit(tenant("bronze", &cfg));
        assert_eq!(r.get("version").and_then(Value::as_u64), Some(3));
        assert_eq!(cp.snapshot().policy, "gold >> bronze");
    }

    #[test]
    fn structural_rejections_touch_nothing() {
        let cfg = universe();
        let mut cp = plane();
        let mut ghost = tenant("gold", &cfg);
        ghost.name = "ghost".into();
        let r = cp.submit(ghost);
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(false));
        assert!(r
            .get("reason")
            .and_then(Value::as_str)
            .unwrap()
            .contains("not in the universe"));

        let mut wrong_id = tenant("gold", &cfg);
        wrong_id.id = 9;
        assert!(cp.submit(wrong_id).get("reason").is_some());

        let mut empty_range = tenant("gold", &cfg);
        empty_range.rank_min = 10;
        empty_range.rank_max = 1;
        assert!(cp.submit(empty_range).get("reason").is_some());

        assert_eq!(cp.snapshot().version, 1);
        assert_eq!(cp.rejected_count(), 3);
        assert_eq!(
            cp.status_value().get("live").and_then(Value::as_u64),
            Some(0)
        );
    }

    #[test]
    fn gate_rejections_carry_diagnostics_matching_qvisor_check() {
        let cfg = universe();
        let mut cp = plane();
        // first_rank=2 means the joint policy shifts by at least 2; a
        // tenant quantized to u64::MAX levels then saturates the rank
        // space — the verifier's QV-OVERFLOW error, with a witness.
        let mut bad = tenant("gold", &cfg);
        bad.rank_max = u64::MAX;
        bad.levels = Some(u64::MAX);
        let r = cp.submit(bad);
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(r.get("result").and_then(Value::as_str), Some("rejected"));
        assert_eq!(r.get("version").and_then(Value::as_u64), Some(1));
        let diags = r.get("diagnostics").and_then(Value::as_array).unwrap();
        assert!(!diags.is_empty());
        assert!(diags
            .iter()
            .any(|d| d.get("code").and_then(Value::as_str) == Some("QV-OVERFLOW")));

        // The rejection is reproducible: verifying the returned
        // effective_config yields the identical diagnostic list.
        let doc = r.get("effective_config").unwrap().to_pretty();
        let again = DeploymentConfig::from_json(&doc).unwrap();
        let joint = again.synthesize().unwrap();
        let report = verify(&joint, &SpecPaths::config());
        let expect: Vec<String> = report
            .diagnostics
            .iter()
            .map(|d| d.to_value().to_compact())
            .collect();
        let got: Vec<String> = diags.iter().map(Value::to_compact).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn withdrawals_reclaim_and_empty_worlds_are_versioned() {
        let cfg = universe();
        let mut cp = plane();
        cp.submit(tenant("gold", &cfg));
        cp.submit(tenant("silver", &cfg));
        assert_eq!(cp.snapshot().version, 3);
        let r = cp.withdraw("gold");
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
        let snap = cp.snapshot();
        assert_eq!(snap.version, 4);
        assert_eq!(snap.live, vec!["silver"]);
        assert_eq!(snap.chains.len(), 1);
        // Withdrawing the last tenant publishes an empty, but versioned,
        // snapshot.
        cp.withdraw("silver");
        let snap = cp.snapshot();
        assert_eq!(snap.version, 5);
        assert!(snap.chains.is_empty());
        assert!(snap.policy.is_empty());
        // Withdrawing a non-live tenant is a protocol error, not a state
        // change.
        let r = cp.withdraw("silver");
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(cp.snapshot().version, 5);
    }

    #[test]
    fn resubmission_updates_the_spec_in_place() {
        let cfg = universe();
        let mut cp = plane();
        cp.submit(tenant("gold", &cfg));
        let mut revised = tenant("gold", &cfg);
        revised.rank_max = 100_000;
        revised.levels = Some(32);
        let r = cp.submit(revised);
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
        let snap = cp.snapshot();
        assert_eq!(snap.version, 3);
        assert_eq!(snap.live, vec!["gold"]);
        assert!(snap.chains[0].chain.contains("100000"));
    }

    #[test]
    fn replaying_the_log_rebuilds_identical_state() {
        let cfg = universe();
        let mut cp = plane();
        cp.submit(tenant("gold", &cfg));
        cp.submit(tenant("bronze", &cfg));
        cp.withdraw("gold");
        cp.submit(tenant("silver", &cfg));
        let mut bad = tenant("silver", &cfg);
        bad.levels = Some(0);
        cp.submit(bad); // rejected: not in the log
        let entries: Vec<LogEntry> = {
            let v = cp.log_value();
            v.get("entries")
                .and_then(Value::as_array)
                .unwrap()
                .iter()
                .map(|e| LogEntry::from_value(e).unwrap())
                .collect()
        };
        assert_eq!(entries.len(), 4);
        let replayed = ControlPlane::replay(&cfg, false, &entries).unwrap();
        assert_eq!(replayed.snapshot().canonical, cp.snapshot().canonical);
    }

    #[test]
    fn telemetry_line_is_one_json_object() {
        let cfg = universe();
        let mut cp = plane();
        cp.submit(tenant("gold", &cfg));
        let line = cp.telemetry_line();
        let v = Value::parse(&line).unwrap();
        assert_eq!(
            v.get("type").and_then(Value::as_str),
            Some("telemetry_snapshot")
        );
        assert_eq!(v.get("version").and_then(Value::as_u64), Some(2));
    }
}
