//! Per-packet lifecycle flight recorder.
//!
//! While metrics (counters, histograms) answer *how much*, the tracer
//! answers *where and when*: it records per-packet lifecycle spans — flow
//! start, rank computation, QVISOR transform application (pre/post rank),
//! enqueue/dequeue/drop at every hop's queue, link serialization, and
//! delivery/ACK — into a compact bounded ring buffer keyed by simulated
//! time. Deterministic seeded per-flow sampling keeps full traces bounded
//! on large runs: whether a flow is sampled is a pure function of
//! `(seed, flow id)`, so the same run always traces the same flows.
//!
//! Like the rest of the crate, the live [`Tracer`] is compiled only with
//! the `enabled` feature; otherwise a zero-sized twin with the same API
//! takes its place. The serialized [`TraceData`] model, its JSONL format,
//! and the [`render_report`] renderer are always compiled so any build can
//! digest traces produced by any other (mirroring [`crate::report`]).
//!
//! Exporters: [`crate::perfetto::export_chrome`] converts a [`TraceData`]
//! into Chrome trace-event JSON that loads in Perfetto / chrome://tracing;
//! [`render_report`] renders a textual per-hop latency breakdown and an
//! inversion timeline.

use qvisor_sim::json::Value;
use qvisor_sim::Nanos;

/// Label id meaning "no queue/link associated with this span".
pub const NO_LABEL: u32 = u32::MAX;

/// Trace schema version written into the `trace_meta` line.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Flight-recorder tuning.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Maximum retained records; the oldest are evicted (and counted)
    /// beyond this, so memory stays bounded on arbitrarily long runs.
    pub capacity: usize,
    /// Trace a flow iff `hash(seed, flow) % sample_one_in == 0`; 1 traces
    /// every flow. Sampling is by flow so a sampled packet's whole
    /// lifecycle is present, never a random subset of its hops.
    pub sample_one_in: u64,
    /// Sampling seed. Changing it picks a different (but still
    /// deterministic) subset of flows.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            capacity: 1 << 18,
            sample_one_in: 1,
            seed: 1,
        }
    }
}

/// What one trace record describes. Ranks are transformed ranks (what the
/// hardware sorts on) unless stated otherwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A flow began emitting (reliable flows: at their start event; CBR
    /// streams: at their first emission).
    FlowStart {
        /// Flow size in bytes (CBR streams report their datagram size).
        size: u64,
    },
    /// The tenant's rank function assigned this packet its raw rank.
    RankComputed {
        /// Tenant-assigned rank.
        rank: u64,
    },
    /// QVISOR's pre-processor rewrote the rank at this hop.
    Transform {
        /// Tenant-assigned rank before the transform.
        pre: u64,
        /// Transformed rank the schedulers sort on.
        post: u64,
    },
    /// The packet entered the labelled queue.
    Enqueue {
        /// Transformed rank at enqueue.
        rank: u64,
    },
    /// The packet left the labelled queue.
    Dequeue {
        /// Transformed rank at dequeue.
        rank: u64,
        /// Queueing delay (dequeue time minus enqueue time).
        wait_ns: u64,
    },
    /// The packet was dropped (queue rejection/eviction when labelled;
    /// monitor/pre-processor/fault-injection drops otherwise).
    Drop {
        /// Transformed rank at the drop.
        rank: u64,
    },
    /// This dequeue was a rank inversion: the record's packet left the
    /// labelled queue while a strictly lower-ranked packet kept waiting.
    Inversion {
        /// Rank of the packet that left early (the record's packet).
        rank: u64,
        /// Flow of the lower-ranked packet that kept waiting.
        loser_flow: u64,
        /// Sequence number of the waiting packet.
        loser_seq: u64,
        /// Rank of the waiting packet (strictly below `rank`).
        loser_rank: u64,
    },
    /// The packet started serializing onto the labelled link.
    TxStart {
        /// Bytes on the wire.
        bytes: u64,
        /// Serialization time at the link rate.
        tx_ns: u64,
        /// Propagation delay to the next hop.
        prop_ns: u64,
    },
    /// A payload packet reached its destination.
    Deliver {
        /// End-to-end latency since the packet was first sent.
        latency_ns: u64,
    },
    /// An acknowledgement reached the original sender.
    Ack {
        /// Latency since the ACK was emitted.
        latency_ns: u64,
    },
}

impl TraceKind {
    /// Machine-readable kind tag used in the JSONL format.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceKind::FlowStart { .. } => "flow_start",
            TraceKind::RankComputed { .. } => "rank",
            TraceKind::Transform { .. } => "transform",
            TraceKind::Enqueue { .. } => "enqueue",
            TraceKind::Dequeue { .. } => "dequeue",
            TraceKind::Drop { .. } => "drop",
            TraceKind::Inversion { .. } => "inversion",
            TraceKind::TxStart { .. } => "tx",
            TraceKind::Deliver { .. } => "deliver",
            TraceKind::Ack { .. } => "ack",
        }
    }
}

/// One recorded span/event of a sampled packet's lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the record.
    pub t: Nanos,
    /// Owning flow (raw id).
    pub flow: u64,
    /// Sequence number within the flow.
    pub seq: u64,
    /// Owning tenant (raw id).
    pub tenant: u16,
    /// True when this record belongs to an acknowledgement packet (ACKs
    /// share `flow`/`seq` with the data packet they acknowledge).
    pub ack: bool,
    /// Interned queue/link label, or [`NO_LABEL`].
    pub label: u32,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceRecord {
    /// A record with no queue/link label and the data-packet flag.
    pub fn new(t: Nanos, flow: u64, seq: u64, tenant: u16, kind: TraceKind) -> TraceRecord {
        TraceRecord {
            t,
            flow,
            seq,
            tenant,
            ack: false,
            label: NO_LABEL,
            kind,
        }
    }

    /// Same record tied to an interned queue/link label.
    pub fn at_label(mut self, label: u32) -> TraceRecord {
        self.label = label;
        self
    }

    /// Same record marked as belonging to an ACK packet.
    pub fn as_ack(mut self, ack: bool) -> TraceRecord {
        self.ack = ack;
        self
    }
}

/// A snapshot of everything the flight recorder holds: the retained
/// records (oldest first), the label table they index into, and the
/// recorder configuration. This is the unit of serialization — bench
/// binaries write it as JSONL, the CLI parses it back.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceData {
    /// Retained records, oldest first.
    pub records: Vec<TraceRecord>,
    /// Interned queue/link labels; `TraceRecord::label` indexes here.
    pub labels: Vec<String>,
    /// Records evicted from the ring buffer before this snapshot.
    pub dropped: u64,
    /// Ring-buffer capacity the recorder ran with.
    pub capacity: u64,
    /// Sampling modulus the recorder ran with.
    pub sample_one_in: u64,
    /// Sampling seed the recorder ran with.
    pub seed: u64,
}

impl TraceData {
    /// Resolve a record's label, or `None` for [`NO_LABEL`] / out of range.
    pub fn label_of(&self, r: &TraceRecord) -> Option<&str> {
        self.labels.get(r.label as usize).map(String::as_str)
    }

    /// Serialize as JSON lines: one `trace_meta` line, then one `span`
    /// line per record (oldest first, labels inlined as strings). The
    /// output is byte-deterministic given the records.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.records.len() * 96);
        let meta = Value::object()
            .set("type", "trace_meta")
            .set("schema", TRACE_SCHEMA_VERSION)
            .set("dropped", self.dropped)
            .set("capacity", self.capacity)
            .set("sample_one_in", self.sample_one_in)
            .set("seed", self.seed);
        out.push_str(&meta.to_compact());
        out.push('\n');
        for r in &self.records {
            let mut line = Value::object()
                .set("type", "span")
                .set("t_ns", r.t)
                .set("flow", r.flow)
                .set("seq", r.seq)
                .set("tenant", r.tenant);
            if r.ack {
                line = line.set("ack", true);
            }
            if let Some(label) = self.label_of(r) {
                line = line.set("queue", label);
            }
            line = line.set("kind", r.kind.tag());
            line = match r.kind {
                TraceKind::FlowStart { size } => line.set("size", size),
                TraceKind::RankComputed { rank } => line.set("rank", rank),
                TraceKind::Transform { pre, post } => line.set("pre", pre).set("post", post),
                TraceKind::Enqueue { rank } => line.set("rank", rank),
                TraceKind::Dequeue { rank, wait_ns } => {
                    line.set("rank", rank).set("wait_ns", wait_ns)
                }
                TraceKind::Drop { rank } => line.set("rank", rank),
                TraceKind::Inversion {
                    rank,
                    loser_flow,
                    loser_seq,
                    loser_rank,
                } => line
                    .set("rank", rank)
                    .set("loser_flow", loser_flow)
                    .set("loser_seq", loser_seq)
                    .set("loser_rank", loser_rank),
                TraceKind::TxStart {
                    bytes,
                    tx_ns,
                    prop_ns,
                } => line
                    .set("bytes", bytes)
                    .set("tx_ns", tx_ns)
                    .set("prop_ns", prop_ns),
                TraceKind::Deliver { latency_ns } => line.set("latency_ns", latency_ns),
                TraceKind::Ack { latency_ns } => line.set("latency_ns", latency_ns),
            };
            out.push_str(&line.to_compact());
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL trace export. Unknown line types and unknown span
    /// kinds are ignored (forward compatibility); malformed JSON is an
    /// error naming the line number. Round-tripping through
    /// [`TraceData::to_jsonl`] is byte-identical.
    pub fn parse(jsonl: &str) -> Result<TraceData, String> {
        if jsonl.lines().all(|l| l.trim().is_empty()) {
            return Err("empty trace (no JSONL lines)".into());
        }
        let mut data = TraceData::default();
        let mut label_ids: std::collections::BTreeMap<String, u32> =
            std::collections::BTreeMap::new();
        for (lineno, line) in jsonl.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = Value::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let u = |key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
            match v.get("type").and_then(Value::as_str) {
                Some("trace_meta") => {
                    data.dropped = u("dropped");
                    data.capacity = u("capacity");
                    data.sample_one_in = u("sample_one_in");
                    data.seed = u("seed");
                }
                Some("span") => {
                    let kind = match v.get("kind").and_then(Value::as_str) {
                        Some("flow_start") => TraceKind::FlowStart { size: u("size") },
                        Some("rank") => TraceKind::RankComputed { rank: u("rank") },
                        Some("transform") => TraceKind::Transform {
                            pre: u("pre"),
                            post: u("post"),
                        },
                        Some("enqueue") => TraceKind::Enqueue { rank: u("rank") },
                        Some("dequeue") => TraceKind::Dequeue {
                            rank: u("rank"),
                            wait_ns: u("wait_ns"),
                        },
                        Some("drop") => TraceKind::Drop { rank: u("rank") },
                        Some("inversion") => TraceKind::Inversion {
                            rank: u("rank"),
                            loser_flow: u("loser_flow"),
                            loser_seq: u("loser_seq"),
                            loser_rank: u("loser_rank"),
                        },
                        Some("tx") => TraceKind::TxStart {
                            bytes: u("bytes"),
                            tx_ns: u("tx_ns"),
                            prop_ns: u("prop_ns"),
                        },
                        Some("deliver") => TraceKind::Deliver {
                            latency_ns: u("latency_ns"),
                        },
                        Some("ack") => TraceKind::Ack {
                            latency_ns: u("latency_ns"),
                        },
                        _ => continue,
                    };
                    let label = match v.get("queue").and_then(Value::as_str) {
                        Some(q) => *label_ids.entry(q.to_string()).or_insert_with(|| {
                            data.labels.push(q.to_string());
                            (data.labels.len() - 1) as u32
                        }),
                        None => NO_LABEL,
                    };
                    data.records.push(TraceRecord {
                        t: Nanos(u("t_ns")),
                        flow: u("flow"),
                        seq: u("seq"),
                        tenant: u("tenant") as u16,
                        ack: v.get("ack").and_then(Value::as_bool).unwrap_or(false),
                        label,
                        kind,
                    });
                }
                _ => {}
            }
        }
        Ok(data)
    }
}

#[cfg(feature = "enabled")]
pub use live_tracer::Tracer;

#[cfg(feature = "enabled")]
mod live_tracer {
    use super::{TraceConfig, TraceData, TraceRecord};
    use qvisor_sim::rng::stable_hash;
    use std::cell::RefCell;
    use std::collections::{BTreeMap, VecDeque};
    use std::rc::Rc;

    #[derive(Default)]
    struct TraceBuf {
        records: VecDeque<TraceRecord>,
        labels: Vec<String>,
        label_ids: BTreeMap<String, u32>,
        dropped: u64,
    }

    /// The flight recorder. Cheaply cloneable; clones share one buffer.
    /// The default value is *disabled*: sampling answers `false`,
    /// recording is a no-op, and snapshots are empty.
    #[derive(Clone, Default)]
    pub struct Tracer {
        inner: Option<Rc<RefCell<TraceBuf>>>,
        capacity: usize,
        sample_one_in: u64,
        seed: u64,
    }

    impl std::fmt::Debug for Tracer {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match &self.inner {
                Some(b) => write!(f, "Tracer(records={})", b.borrow().records.len()),
                None => write!(f, "Tracer(disabled)"),
            }
        }
    }

    impl Tracer {
        /// A recording instance with the given configuration.
        pub fn enabled(cfg: TraceConfig) -> Tracer {
            Tracer {
                inner: Some(Rc::new(RefCell::new(TraceBuf::default()))),
                capacity: cfg.capacity,
                sample_one_in: cfg.sample_one_in.max(1),
                seed: cfg.seed,
            }
        }

        /// A non-recording instance (same as `Tracer::default()`).
        pub fn disabled() -> Tracer {
            Tracer::default()
        }

        /// Whether this handle records anything.
        #[inline]
        pub fn is_enabled(&self) -> bool {
            self.inner.is_some()
        }

        /// Whether `flow` is in the sampled subset: a pure function of the
        /// configured seed and the flow id, so reruns trace the same flows.
        /// Always `false` when disabled.
        #[inline]
        pub fn sampled(&self, flow: u64) -> bool {
            match &self.inner {
                Some(_) => {
                    self.sample_one_in <= 1
                        || stable_hash(&[self.seed, flow]).is_multiple_of(self.sample_one_in)
                }
                None => false,
            }
        }

        /// Intern a queue/link label, returning its stable id (first-seen
        /// order). Returns [`super::NO_LABEL`] when disabled.
        pub fn intern(&self, label: &str) -> u32 {
            let Some(buf) = &self.inner else {
                return super::NO_LABEL;
            };
            let mut buf = buf.borrow_mut();
            if let Some(&id) = buf.label_ids.get(label) {
                return id;
            }
            let id = buf.labels.len() as u32;
            buf.labels.push(label.to_string());
            buf.label_ids.insert(label.to_string(), id);
            id
        }

        /// Append one record, evicting (and counting) the oldest at
        /// capacity. Callers are expected to have checked
        /// [`Tracer::sampled`]; recording is unconditional here so
        /// non-flow records (if any) can still be traced.
        #[inline]
        pub fn record(&self, record: TraceRecord) {
            if let Some(buf) = &self.inner {
                let mut buf = buf.borrow_mut();
                if self.capacity == 0 {
                    buf.dropped += 1;
                    return;
                }
                if buf.records.len() == self.capacity {
                    buf.records.pop_front();
                    buf.dropped += 1;
                }
                buf.records.push_back(record);
            }
        }

        /// Records evicted so far (0 when disabled).
        pub fn dropped(&self) -> u64 {
            self.inner.as_ref().map_or(0, |b| b.borrow().dropped)
        }

        /// Records currently retained (0 when disabled).
        pub fn len(&self) -> usize {
            self.inner.as_ref().map_or(0, |b| b.borrow().records.len())
        }

        /// True when nothing is retained.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Snapshot everything recorded so far (empty when disabled).
        pub fn snapshot(&self) -> TraceData {
            match &self.inner {
                Some(buf) => {
                    let buf = buf.borrow();
                    TraceData {
                        records: buf.records.iter().copied().collect(),
                        labels: buf.labels.clone(),
                        dropped: buf.dropped,
                        capacity: self.capacity as u64,
                        sample_one_in: self.sample_one_in,
                        seed: self.seed,
                    }
                }
                None => TraceData::default(),
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
pub use noop_tracer::Tracer;

#[cfg(not(feature = "enabled"))]
mod noop_tracer {
    use super::{TraceConfig, TraceData, TraceRecord};

    /// No-op flight recorder (the `enabled` feature is off).
    #[derive(Clone, Copy, Default)]
    pub struct Tracer;

    impl std::fmt::Debug for Tracer {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Tracer(compiled out)")
        }
    }

    impl Tracer {
        /// Still a no-op handle; the feature decides, not the constructor.
        pub fn enabled(_cfg: TraceConfig) -> Tracer {
            Tracer
        }

        /// A no-op handle.
        pub fn disabled() -> Tracer {
            Tracer
        }

        /// Always false.
        #[inline(always)]
        pub fn is_enabled(&self) -> bool {
            false
        }

        /// Always false.
        #[inline(always)]
        pub fn sampled(&self, _flow: u64) -> bool {
            false
        }

        /// Always [`super::NO_LABEL`].
        #[inline(always)]
        pub fn intern(&self, _label: &str) -> u32 {
            super::NO_LABEL
        }

        /// No-op.
        #[inline(always)]
        pub fn record(&self, _record: TraceRecord) {}

        /// Always 0.
        #[inline(always)]
        pub fn dropped(&self) -> u64 {
            0
        }

        /// Always 0.
        #[inline(always)]
        pub fn len(&self) -> usize {
            0
        }

        /// Always true.
        #[inline(always)]
        pub fn is_empty(&self) -> bool {
            true
        }

        /// Always empty.
        pub fn snapshot(&self) -> TraceData {
            TraceData::default()
        }
    }
}

/// Nearest-rank `p`-quantile of a sorted slice (`None` if empty).
fn quantile_sorted(sorted: &[u64], p: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((p.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1) - 1;
    Some(sorted[rank.min(sorted.len() - 1)])
}

fn fmt_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |v| v.to_string())
}

fn percentile_row(name: String, values: &mut [u64]) -> Vec<String> {
    values.sort_unstable();
    vec![
        name,
        values.len().to_string(),
        fmt_opt(quantile_sorted(values, 0.50)),
        fmt_opt(quantile_sorted(values, 0.90)),
        fmt_opt(quantile_sorted(values, 0.99)),
        fmt_opt(values.last().copied()),
    ]
}

/// Render a textual per-hop latency breakdown: queueing delay per tenant
/// and per hop, link serialization and propagation per hop, end-to-end
/// delivery latency per tenant, and the inversion timeline naming the
/// exact packet pairs that inverted and in which queue.
pub fn render_report(data: &TraceData) -> String {
    use std::collections::BTreeMap;
    let mut out = String::new();
    out.push_str(&format!(
        "trace report ({} span(s) retained, {} evicted, sampling 1-in-{}, seed {})\n",
        data.records.len(),
        data.dropped,
        data.sample_one_in.max(1),
        data.seed,
    ));
    if data.dropped > 0 {
        out.push_str("warning: ring buffer overflowed — the oldest spans are missing\n");
    }

    // (tenant, queue) -> queueing waits; queue -> (tx, prop) times.
    let mut queueing: BTreeMap<(u16, u32), Vec<u64>> = BTreeMap::new();
    let mut serialization: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    let mut propagation: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    let mut delivery: BTreeMap<u16, Vec<u64>> = BTreeMap::new();
    let mut inversions: Vec<&TraceRecord> = Vec::new();
    let mut drops = 0u64;
    for r in &data.records {
        match r.kind {
            TraceKind::Dequeue { wait_ns, .. } => {
                queueing
                    .entry((r.tenant, r.label))
                    .or_default()
                    .push(wait_ns);
            }
            TraceKind::TxStart { tx_ns, prop_ns, .. } => {
                serialization.entry(r.label).or_default().push(tx_ns);
                propagation.entry(r.label).or_default().push(prop_ns);
            }
            TraceKind::Deliver { latency_ns } => {
                delivery.entry(r.tenant).or_default().push(latency_ns);
            }
            TraceKind::Inversion { .. } => inversions.push(r),
            TraceKind::Drop { .. } => drops += 1,
            _ => {}
        }
    }

    let label_name = |id: u32| -> String {
        data.labels
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| "-".to_string())
    };
    let headers: Vec<String> = ["where", "count", "p50", "p90", "p99", "max"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    if !queueing.is_empty() {
        out.push_str("\nqueueing delay (ns), per tenant and hop:\n");
        let rows: Vec<Vec<String>> = queueing
            .iter_mut()
            .map(|(&(tenant, label), waits)| {
                percentile_row(format!("T{tenant} @ {}", label_name(label)), waits)
            })
            .collect();
        crate::report::render_table(&mut out, &headers, &rows);
    }
    if !serialization.is_empty() {
        out.push_str("\nlink serialization (ns), per hop:\n");
        let rows: Vec<Vec<String>> = serialization
            .iter_mut()
            .map(|(&label, txs)| percentile_row(label_name(label), txs))
            .collect();
        crate::report::render_table(&mut out, &headers, &rows);
    }
    if !propagation.is_empty() {
        out.push_str("\npropagation (ns), per hop:\n");
        let rows: Vec<Vec<String>> = propagation
            .iter_mut()
            .map(|(&label, props)| percentile_row(label_name(label), props))
            .collect();
        crate::report::render_table(&mut out, &headers, &rows);
    }
    if !delivery.is_empty() {
        out.push_str("\nend-to-end delivery latency (ns), per tenant:\n");
        let rows: Vec<Vec<String>> = delivery
            .iter_mut()
            .map(|(&tenant, lats)| percentile_row(format!("T{tenant}"), lats))
            .collect();
        crate::report::render_table(&mut out, &headers, &rows);
    }
    if drops > 0 {
        out.push_str(&format!("\ndrops traced: {drops}\n"));
    }

    out.push_str(&format!("\ninversions ({}):\n", inversions.len()));
    if inversions.is_empty() {
        out.push_str("  none — every traced dequeue respected rank order\n");
    }
    for r in inversions {
        if let TraceKind::Inversion {
            rank,
            loser_flow,
            loser_seq,
            loser_rank,
        } = r.kind
        {
            out.push_str(&format!(
                "  t={}ns {}: T{} f{}#{} (rank {rank}) dequeued before f{loser_flow}#{loser_seq} (rank {loser_rank})\n",
                r.t.as_nanos(),
                label_name(r.label),
                r.tenant,
                r.flow,
                r.seq,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> TraceData {
        let q = 0u32;
        TraceData {
            records: vec![
                TraceRecord::new(Nanos(0), 1, 0, 1, TraceKind::FlowStart { size: 3000 }),
                TraceRecord::new(Nanos(10), 1, 0, 1, TraceKind::RankComputed { rank: 9 }),
                TraceRecord::new(Nanos(11), 1, 0, 1, TraceKind::Transform { pre: 9, post: 4 })
                    .at_label(q),
                TraceRecord::new(Nanos(12), 1, 0, 1, TraceKind::Enqueue { rank: 4 }).at_label(q),
                TraceRecord::new(
                    Nanos(500),
                    1,
                    0,
                    1,
                    TraceKind::Dequeue {
                        rank: 4,
                        wait_ns: 488,
                    },
                )
                .at_label(q),
                TraceRecord::new(
                    Nanos(500),
                    1,
                    0,
                    1,
                    TraceKind::Inversion {
                        rank: 4,
                        loser_flow: 2,
                        loser_seq: 7,
                        loser_rank: 1,
                    },
                )
                .at_label(q),
                TraceRecord::new(
                    Nanos(500),
                    1,
                    0,
                    1,
                    TraceKind::TxStart {
                        bytes: 1500,
                        tx_ns: 12_000,
                        prop_ns: 1_000,
                    },
                )
                .at_label(q),
                TraceRecord::new(
                    Nanos(13_500),
                    1,
                    0,
                    1,
                    TraceKind::Deliver { latency_ns: 13_500 },
                ),
                TraceRecord::new(Nanos(14_000), 1, 0, 1, TraceKind::Ack { latency_ns: 400 })
                    .as_ack(true),
            ],
            labels: vec!["n0.p0".to_string()],
            dropped: 2,
            capacity: 1024,
            sample_one_in: 1,
            seed: 7,
        }
    }

    #[test]
    fn jsonl_round_trip_is_byte_identical() {
        let data = sample_data();
        let jsonl = data.to_jsonl();
        for line in jsonl.lines() {
            Value::parse(line).expect("valid JSON line");
        }
        let parsed = TraceData::parse(&jsonl).unwrap();
        assert_eq!(parsed, data);
        assert_eq!(parsed.to_jsonl(), jsonl);
    }

    #[test]
    fn parse_rejects_garbage_and_tolerates_unknowns() {
        assert!(TraceData::parse("").is_err());
        let err = TraceData::parse("{\"type\":\"trace_meta\"}\nnope\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let ok = TraceData::parse(
            "{\"type\":\"mystery\"}\n{\"type\":\"span\",\"kind\":\"hologram\",\"t_ns\":1}\n",
        )
        .unwrap();
        assert!(ok.records.is_empty());
    }

    #[test]
    fn report_breaks_down_latency_and_names_inversion_pairs() {
        let text = render_report(&sample_data());
        assert!(text.contains("queueing delay"), "{text}");
        assert!(text.contains("T1 @ n0.p0"), "{text}");
        assert!(text.contains("link serialization"), "{text}");
        assert!(text.contains("12000"), "{text}");
        assert!(text.contains("end-to-end delivery latency"), "{text}");
        assert!(
            text.contains("f1#0 (rank 4) dequeued before f2#7 (rank 1)"),
            "{text}"
        );
        assert!(text.contains("warning: ring buffer overflowed"), "{text}");
    }

    #[cfg(feature = "enabled")]
    mod live {
        use super::super::*;

        #[test]
        fn disabled_tracer_is_inert() {
            let t = Tracer::disabled();
            assert!(!t.is_enabled());
            assert!(!t.sampled(0));
            assert_eq!(t.intern("q"), NO_LABEL);
            t.record(TraceRecord::new(
                Nanos(1),
                1,
                0,
                0,
                TraceKind::FlowStart { size: 1 },
            ));
            assert!(t.is_empty());
            assert_eq!(t.snapshot(), TraceData::default());
        }

        #[test]
        fn sampling_is_deterministic_and_thins() {
            let cfg = TraceConfig {
                sample_one_in: 8,
                seed: 42,
                ..TraceConfig::default()
            };
            let a = Tracer::enabled(cfg);
            let b = Tracer::enabled(cfg);
            let picked: Vec<u64> = (0..1000).filter(|&f| a.sampled(f)).collect();
            let again: Vec<u64> = (0..1000).filter(|&f| b.sampled(f)).collect();
            assert_eq!(picked, again, "sampling must be a pure function");
            assert!(
                picked.len() > 50 && picked.len() < 250,
                "1-in-8 of 1000 flows picked {}",
                picked.len()
            );
            // A different seed picks a different subset.
            let c = Tracer::enabled(TraceConfig { seed: 43, ..cfg });
            let other: Vec<u64> = (0..1000).filter(|&f| c.sampled(f)).collect();
            assert_ne!(picked, other);
            // 1-in-1 samples everything.
            let all = Tracer::enabled(TraceConfig {
                sample_one_in: 1,
                ..TraceConfig::default()
            });
            assert!((0..100).all(|f| all.sampled(f)));
        }

        #[test]
        fn ring_buffer_evicts_oldest_and_counts() {
            let t = Tracer::enabled(TraceConfig {
                capacity: 3,
                ..TraceConfig::default()
            });
            for i in 0..5u64 {
                t.record(TraceRecord::new(
                    Nanos(i),
                    i,
                    0,
                    0,
                    TraceKind::FlowStart { size: i },
                ));
            }
            assert_eq!(t.len(), 3);
            assert_eq!(t.dropped(), 2);
            let snap = t.snapshot();
            let ts: Vec<u64> = snap.records.iter().map(|r| r.t.as_nanos()).collect();
            assert_eq!(ts, vec![2, 3, 4]);
            assert_eq!(snap.dropped, 2);
        }

        #[test]
        fn clones_share_one_buffer_and_label_table() {
            let t = Tracer::enabled(TraceConfig::default());
            let t2 = t.clone();
            let a = t.intern("n0.p0");
            let b = t2.intern("n0.p0");
            assert_eq!(a, b);
            assert_eq!(t2.intern("n0.p1"), a + 1);
            t.record(
                TraceRecord::new(Nanos(1), 1, 0, 0, TraceKind::Enqueue { rank: 5 }).at_label(a),
            );
            assert_eq!(t2.len(), 1);
            assert_eq!(
                t2.snapshot().label_of(&t2.snapshot().records[0]),
                Some("n0.p0")
            );
        }

        #[test]
        fn snapshot_jsonl_round_trips() {
            let t = Tracer::enabled(TraceConfig {
                sample_one_in: 4,
                seed: 9,
                ..TraceConfig::default()
            });
            let q = t.intern("n1.p2");
            t.record(
                TraceRecord::new(Nanos(5), 3, 1, 2, TraceKind::Enqueue { rank: 8 }).at_label(q),
            );
            t.record(TraceRecord::new(
                Nanos(9),
                3,
                1,
                2,
                TraceKind::Deliver { latency_ns: 4 },
            ));
            let snap = t.snapshot();
            let parsed = TraceData::parse(&snap.to_jsonl()).unwrap();
            assert_eq!(parsed, snap);
            assert_eq!(parsed.sample_one_in, 4);
        }
    }
}
