//! Strongly-typed identifiers used throughout the simulator.
//!
//! Newtypes instead of bare integers so a `FlowId` can never be passed where
//! a `NodeId` is expected — with zero runtime cost.

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Raw numeric value.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A node (host or switch) in the simulated network.
    NodeId, u32, "n"
);

id_type!(
    /// A flow: one logical transfer between a source and destination host.
    FlowId, u64, "f"
);

id_type!(
    /// A tenant: a traffic segment owning one scheduling policy.
    ///
    /// Per the paper (§3.1), a tenant "refers to a traffic segment (e.g.,
    /// from a given application), not necessarily a physical tenant".
    TenantId, u16, "T"
);

/// A scheduling rank. Lower rank = higher priority (PIFO convention).
pub type Rank = u64;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(FlowId(42).to_string(), "f42");
        assert_eq!(TenantId(1).to_string(), "T1");
        assert_eq!(format!("{:?}", TenantId(1)), "T1");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(NodeId(1) < NodeId(2));
        let set: HashSet<FlowId> = [FlowId(1), FlowId(1), FlowId(2)].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(NodeId::from(7u32).index(), 7);
        assert_eq!(FlowId::from(9u64).index(), 9);
    }
}
