//! The daemon's wire protocol: line-delimited JSON over TCP.
//!
//! Every request is a single line holding one JSON object with an `"op"`
//! field; every response is a single line holding one JSON object with an
//! `"ok"` boolean. Malformed requests produce an error response and leave
//! the connection open. The full schema is documented in DESIGN.md
//! ("Control plane").

use qvisor_core::config_api::TenantConfig;
use qvisor_sim::json::{self, Value};

/// A parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit (or re-submit) one tenant's policy declaration; runs the
    /// admission gate and, on acceptance, resynthesizes the joint policy.
    SubmitPolicy(TenantConfig),
    /// Withdraw a live tenant by name; its rank space is reclaimed.
    WithdrawTenant(String),
    /// Read the published chain for one tenant, or all chains.
    GetChain(Option<String>),
    /// Control-plane counters and the current version.
    Status,
    /// Daemon metrics in Prometheus text exposition format.
    Metrics,
    /// The full canonical snapshot (used for replay byte-comparison).
    Snapshot,
    /// The accepted-mutation log (used for sequential replay).
    GetLog,
    /// Turn this connection into a telemetry snapshot stream.
    SubscribeTelemetry,
    /// Stop the daemon cleanly.
    Shutdown,
}

/// Parse a tenant document (the `submit-policy` body shape). Errors are
/// client-facing strings.
pub fn tenant_config_from_value(v: &Value) -> Result<TenantConfig, String> {
    let err = |e: json::ParseError| format!("invalid tenant document: {}", e.msg);
    let levels = match v.get("levels") {
        None => None,
        Some(l) if l.is_null() => None,
        Some(l) => Some(
            l.as_u64()
                .ok_or("invalid tenant document: field 'levels' must be a non-negative integer")?,
        ),
    };
    let id = json::field_u64(v, "id").map_err(err)?;
    let id = u16::try_from(id).map_err(|_| "field 'id' does not fit a tenant id (u16)")?;
    Ok(TenantConfig {
        id,
        name: json::field_str(v, "name").map_err(err)?.to_string(),
        algorithm: json::field_str(v, "algorithm").map_err(err)?.to_string(),
        rank_min: json::field_u64(v, "rank_min").map_err(err)?,
        rank_max: json::field_u64(v, "rank_max").map_err(err)?,
        levels,
    })
}

/// Serialize a tenant document (the inverse of the `submit-policy` body).
pub fn tenant_config_value(t: &TenantConfig) -> Value {
    let obj = Value::object()
        .set("id", u64::from(t.id))
        .set("name", t.name.as_str())
        .set("algorithm", t.algorithm.as_str())
        .set("rank_min", t.rank_min)
        .set("rank_max", t.rank_max);
    match t.levels {
        Some(levels) => obj.set("levels", levels),
        None => obj,
    }
}

impl Request {
    /// Parse one request line. Errors are client-facing strings.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Value::parse(line).map_err(|e| format!("request is not JSON: {}", e.msg))?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or("request has no string 'op' field")?;
        match op {
            "submit-policy" => {
                let tenant = v
                    .get("tenant")
                    .ok_or("submit-policy needs a 'tenant' object")?;
                Ok(Request::SubmitPolicy(tenant_config_from_value(tenant)?))
            }
            "withdraw-tenant" => {
                let name = v
                    .get("tenant")
                    .and_then(Value::as_str)
                    .ok_or("withdraw-tenant needs a string 'tenant' field")?;
                Ok(Request::WithdrawTenant(name.to_string()))
            }
            "get-chain" => match v.get("tenant") {
                None => Ok(Request::GetChain(None)),
                Some(t) => Ok(Request::GetChain(Some(
                    t.as_str()
                        .ok_or("get-chain 'tenant' must be a string")?
                        .to_string(),
                ))),
            },
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "snapshot" => Ok(Request::Snapshot),
            "get-log" => Ok(Request::GetLog),
            "subscribe-telemetry" => Ok(Request::SubscribeTelemetry),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op '{other}'")),
        }
    }

    /// Serialize back to a request line (used by tests and the harness).
    pub fn to_line(&self) -> String {
        let v = match self {
            Request::SubmitPolicy(t) => Value::object()
                .set("op", "submit-policy")
                .set("tenant", tenant_config_value(t)),
            Request::WithdrawTenant(name) => Value::object()
                .set("op", "withdraw-tenant")
                .set("tenant", name.as_str()),
            Request::GetChain(None) => Value::object().set("op", "get-chain"),
            Request::GetChain(Some(name)) => Value::object()
                .set("op", "get-chain")
                .set("tenant", name.as_str()),
            Request::Status => Value::object().set("op", "status"),
            Request::Metrics => Value::object().set("op", "metrics"),
            Request::Snapshot => Value::object().set("op", "snapshot"),
            Request::GetLog => Value::object().set("op", "get-log"),
            Request::SubscribeTelemetry => Value::object().set("op", "subscribe-telemetry"),
            Request::Shutdown => Value::object().set("op", "shutdown"),
        };
        v.to_compact()
    }

    /// The wire `op` string (the per-op request counter label).
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::SubmitPolicy(_) => "submit-policy",
            Request::WithdrawTenant(_) => "withdraw-tenant",
            Request::GetChain(_) => "get-chain",
            Request::Status => "status",
            Request::Metrics => "metrics",
            Request::Snapshot => "snapshot",
            Request::GetLog => "get-log",
            Request::SubscribeTelemetry => "subscribe-telemetry",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Build an `{"ok":false,"error":…}` response line value.
pub fn error_response(msg: &str) -> Value {
    Value::object().set("ok", false).set("error", msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_roundtrip() {
        let reqs = [
            Request::SubmitPolicy(TenantConfig {
                id: 3,
                name: "gold".into(),
                algorithm: "pFabric".into(),
                rank_min: 0,
                rank_max: 999,
                levels: Some(16),
            }),
            Request::WithdrawTenant("gold".into()),
            Request::GetChain(None),
            Request::GetChain(Some("gold".into())),
            Request::Status,
            Request::Metrics,
            Request::Snapshot,
            Request::GetLog,
            Request::SubscribeTelemetry,
            Request::Shutdown,
        ];
        for req in reqs {
            assert_eq!(Request::parse(&req.to_line()).unwrap(), req);
        }
    }

    #[test]
    fn levels_is_optional() {
        let req = Request::parse(
            r#"{"op":"submit-policy","tenant":{"id":1,"name":"a","algorithm":"x","rank_min":0,"rank_max":9}}"#,
        )
        .unwrap();
        match req {
            Request::SubmitPolicy(t) => assert_eq!(t.levels, None),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_client_errors() {
        assert!(Request::parse("{oops").unwrap_err().contains("not JSON"));
        assert!(Request::parse("{}").unwrap_err().contains("'op'"));
        assert!(Request::parse(r#"{"op":"fly"}"#)
            .unwrap_err()
            .contains("unknown op"));
        assert!(Request::parse(r#"{"op":"submit-policy"}"#)
            .unwrap_err()
            .contains("tenant"));
        assert!(Request::parse(
            r#"{"op":"submit-policy","tenant":{"id":99999,"name":"a","algorithm":"x","rank_min":0,"rank_max":9}}"#
        )
        .unwrap_err()
        .contains("u16"));
    }
}
