//! Deploying QVISOR on a commodity switch (§3.4).
//!
//! Existing switches don't have PIFOs — only a handful of strict-priority
//! FIFO queues. QVISOR allocates queues to strict bands (isolation
//! survives) and maps ranks to queues within each band. This example
//! deploys one joint policy on four targets — ideal PIFO, banded static
//! 8-queue bank, SP-PIFO 8-queue bank, AIFO — drives an identical packet
//! stream through each, and measures scheduling fidelity (rank inversions)
//! and isolation.
//!
//! Run with: `cargo run --example commodity_switch`

use qvisor::core::{
    synthesize, Backend, BandedMapper, Policy, PreProcessor, SpAdaptation, SynthConfig, TenantSpec,
    UnknownTenantAction,
};
use qvisor::ranking::RankRange;
use qvisor::scheduler::{AuditedQueue, Capacity, PacketQueue};
use qvisor::sim::{FlowId, Nanos, NodeId, Packet, SimRng, TenantId};

fn main() {
    // Two tenants strictly prioritized over a third.
    let specs = vec![
        TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(0, 100_000)).with_levels(32),
        TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(0, 10_000)).with_levels(32),
        TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(0, 1_000)).with_levels(16),
    ];
    let policy = Policy::parse("T1 + T2 >> T3").unwrap();
    let joint = synthesize(&specs, &policy, SynthConfig::default()).unwrap();
    println!("policy: {policy}");
    println!("joint rank span: {}\n", joint.output_span());

    // Show the §3.4 queue allocation for the banded backend.
    let mapper = BandedMapper::from_joint(&joint, 8).unwrap();
    println!("queue allocation on an 8-queue switch (first queue, count):");
    for (level, (first, count)) in mapper.allocations().iter().enumerate() {
        println!(
            "  strict level {level}: queues {first}..{}",
            first + count - 1
        );
    }
    println!();

    // One identical synthetic packet stream through every backend.
    let mut pre = PreProcessor::new(&joint, UnknownTenantAction::BestEffort);
    let mut rng = SimRng::seed_from(99);
    let mut stream = Vec::new();
    for i in 0..4_000u64 {
        let tenant = TenantId(1 + (rng.below(3) as u16));
        let rank = match tenant.0 {
            1 => rng.below(100_001),
            2 => rng.below(10_001),
            _ => rng.below(1_001),
        };
        let mut p = Packet::data(
            FlowId(i),
            tenant,
            i,
            1_500,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        );
        pre.process(&mut p);
        stream.push(p);
    }

    let capacity = Capacity::packets(64, 1_500);
    let backends: Vec<(&str, Backend)> = vec![
        ("ideal PIFO", Backend::Pifo { capacity }),
        (
            "8-queue banded static",
            Backend::StrictPriority {
                queues: 8,
                capacity,
                adaptation: SpAdaptation::BandedStatic,
            },
        ),
        (
            "8-queue SP-PIFO",
            Backend::StrictPriority {
                queues: 8,
                capacity,
                adaptation: SpAdaptation::SpPifo,
            },
        ),
        (
            "AIFO (single FIFO)",
            Backend::Aifo {
                capacity,
                window: 64,
                burst: 0.1,
            },
        ),
    ];

    println!(
        "{:<24}{:>12}{:>12}{:>12}{:>14}",
        "backend", "dequeued", "dropped", "inversions", "T3-before-T1T2"
    );
    for (name, backend) in backends {
        let queue = backend.build(&joint).unwrap();
        let mut audited = AuditedQueue::new(queue);
        // Interleave enqueue/dequeue (2:1) to mimic an overloaded port.
        let mut out = Vec::new();
        for chunk in stream.chunks(2) {
            for p in chunk {
                audited.enqueue(p.clone(), Nanos::ZERO);
            }
            if let Some(p) = audited.dequeue(Nanos::ZERO) {
                out.push(p);
            }
        }
        while let Some(p) = audited.dequeue(Nanos::ZERO) {
            out.push(p);
        }
        // Isolation violations: a T3 packet served while T1/T2 wait. Count
        // T3 packets that appear before the last T1/T2 packet.
        let last_top = out
            .iter()
            .rposition(|p| p.tenant != TenantId(3))
            .unwrap_or(0);
        let t3_early = out[..last_top]
            .iter()
            .filter(|p| p.tenant == TenantId(3))
            .count();
        let s = audited.stats();
        println!(
            "{:<24}{:>12}{:>12}{:>12}{:>14}",
            name, s.dequeued, s.dropped, s.inversions, t3_early
        );
    }
    println!(
        "\nThe banded-static bank keeps strict isolation with zero T3 \
         leakage; SP-PIFO trades isolation for adaptivity; AIFO never \
         reorders, only filters."
    );
}
