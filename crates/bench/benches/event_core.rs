//! Event-core microbenchmark: hierarchical timing wheel vs binary heap.
//!
//! Two access patterns bound the simulator's hot loop:
//!
//! * `drain` — schedule N events, pop them all (startup/teardown shape);
//! * `churn` — hold N pending events while repeatedly popping one and
//!   scheduling a replacement (the steady-state shape of a packet-level
//!   run, where every pop schedules a PortFree/Arrive/Timeout successor).
//!
//! Delays follow the netsim's mix: mostly sub-millisecond serialization/
//! propagation delays with a tail of RTO-scale timers. Both cores are
//! cross-checked for identical pop checksums before anything is timed, so
//! the bench doubles as a coarse differential test.
//!
//! Usage: `cargo bench -p qvisor-bench --bench event_core [-- --smoke|--full]`
//! (`--smoke`/`--test` = 10^4 only, for CI bit-rot protection; `--full`
//! adds the 10^7 point to the default 10^4–10^6 sweep).

use qvisor_bench::harness::{bench_batched, print_header};
use qvisor_sim::{EventCore, EventQueue, Nanos, SimRng};

/// Next event delay: ~99% short path-latency scale, ~1% RTO-scale.
fn delay(rng: &mut SimRng) -> u64 {
    if rng.below(100) == 0 {
        500_000 + rng.below(8_000_000) // 0.5–8.5 ms timer tail
    } else {
        1 + rng.below(1_000_000) // up to 1 ms wire/propagation events
    }
}

fn prefill(core: EventCore, pending: usize, seed: u64) -> (EventQueue<u64>, SimRng) {
    let mut q = EventQueue::with_core(core);
    let mut rng = SimRng::seed_from(seed);
    for i in 0..pending as u64 {
        q.schedule(Nanos(rng.below(1_000_000_000)), i);
    }
    (q, rng)
}

/// Pop+reschedule `ops` times, keeping the pending count constant.
fn churn((mut q, mut rng): (EventQueue<u64>, SimRng), ops: usize) -> u64 {
    let mut acc = 0u64;
    for i in 0..ops as u64 {
        let (at, id) = q.pop().expect("queue stays non-empty");
        acc = acc.wrapping_add(at.as_nanos()).wrapping_add(id);
        q.schedule_in(Nanos(delay(&mut rng)), i);
    }
    acc
}

/// Pop everything.
fn drain((mut q, _): (EventQueue<u64>, SimRng)) -> u64 {
    let mut acc = 0u64;
    while let Some((at, id)) = q.pop() {
        acc = acc.wrapping_add(at.as_nanos()).wrapping_add(id);
    }
    acc
}

fn label(op: &str, core: EventCore, pending: usize) -> String {
    let core = match core {
        EventCore::Wheel => "wheel",
        EventCore::Heap => "heap",
    };
    format!("{op}_{core}_{pending}_pending")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--test");
    let full = args.iter().any(|a| a == "--full");
    let sizes: &[usize] = if smoke {
        &[10_000]
    } else if full {
        &[10_000, 100_000, 1_000_000, 10_000_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let churn_ops = if smoke { 10_000 } else { 100_000 };

    // Differential sanity before timing: identical traces, identical pops.
    for &n in sizes {
        let seed = n as u64;
        assert_eq!(
            drain(prefill(EventCore::Wheel, n, seed)),
            drain(prefill(EventCore::Heap, n, seed)),
            "cores disagree on drain({n})"
        );
        assert_eq!(
            churn(prefill(EventCore::Wheel, n, seed), churn_ops.min(n)),
            churn(prefill(EventCore::Heap, n, seed), churn_ops.min(n)),
            "cores disagree on churn({n})"
        );
    }

    print_header("event_core: timing wheel vs binary heap (ns/iter = whole pattern)");
    for &n in sizes {
        for core in [EventCore::Wheel, EventCore::Heap] {
            bench_batched(&label("drain", core, n), || prefill(core, n, 42), drain);
        }
        for core in [EventCore::Wheel, EventCore::Heap] {
            bench_batched(
                &format!("{}_x{churn_ops}", label("churn", core, n)),
                || prefill(core, n, 42),
                |q| churn(q, churn_ops),
            );
        }
    }
}
