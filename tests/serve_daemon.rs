//! End-to-end exercise of the `qvisor serve` control-plane daemon over
//! real TCP, using the shipped `examples/serve/` documents: admission,
//! QV-* rejection parity with `qvisor check`, versioned snapshot reads,
//! withdrawal, telemetry streaming, log replay, and clean shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use qvisor_core::{verify, DeploymentConfig, SpecPaths};
use qvisor_serve::{ChainSnapshot, ControlPlane, Daemon, LogEntry, ServeOptions};
use qvisor_sim::json::Value;

fn example(file: &str) -> String {
    let path = format!("{}/examples/serve/{file}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(path).expect("example document exists")
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(daemon: &Daemon) -> Client {
        let stream = TcpStream::connect(daemon.local_addr()).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn rpc(&mut self, line: &str) -> Value {
        writeln!(self.writer, "{}", line.trim()).expect("write");
        self.read()
    }

    fn read(&mut self) -> Value {
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read");
        Value::parse(response.trim()).expect("response is JSON")
    }
}

fn start_daemon() -> (Daemon, DeploymentConfig) {
    let config = DeploymentConfig::from_json(&example("config.json")).expect("config parses");
    let daemon = Daemon::start(
        config.clone(),
        ServeOptions {
            listen: "127.0.0.1:0".to_string(),
            deny_warnings: false,
        },
    )
    .expect("daemon starts");
    (daemon, config)
}

#[test]
fn daemon_lifecycle_with_example_documents() {
    let (daemon, config) = start_daemon();
    let mut client = Client::connect(&daemon);

    // A telemetry subscriber sees every committed reconfiguration.
    let mut subscriber = Client::connect(&daemon);
    let ack = subscriber.rpc(r#"{"op":"subscribe-telemetry"}"#);
    assert_eq!(
        ack.get("result").and_then(Value::as_str),
        Some("subscribed")
    );

    // Known-good submission: admitted, version bumps 1 -> 2.
    let good = client.rpc(&example("submit_good.json"));
    assert_eq!(
        good.get("ok").and_then(Value::as_bool),
        Some(true),
        "{good:?}"
    );
    assert_eq!(good.get("result").and_then(Value::as_str), Some("accepted"));
    assert_eq!(good.get("version").and_then(Value::as_u64), Some(2));

    let stream_line = subscriber.read();
    assert_eq!(
        stream_line.get("type").and_then(Value::as_str),
        Some("telemetry_snapshot")
    );
    assert_eq!(stream_line.get("version").and_then(Value::as_u64), Some(2));

    // Known-bad submission: rejected with QV-OVERFLOW, version unchanged,
    // and the diagnostics must equal `qvisor check` (library `verify`) on
    // the returned candidate document.
    let bad = client.rpc(&example("submit_bad.json"));
    assert_eq!(bad.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(bad.get("result").and_then(Value::as_str), Some("rejected"));
    assert_eq!(bad.get("version").and_then(Value::as_u64), Some(2));
    let diags = bad
        .get("diagnostics")
        .and_then(Value::as_array)
        .expect("rejection carries diagnostics");
    assert!(diags
        .iter()
        .any(|d| d.get("code").and_then(Value::as_str) == Some("QV-OVERFLOW")));
    let candidate = DeploymentConfig::from_json(
        &bad.get("effective_config")
            .expect("rejection carries the candidate document")
            .to_pretty(),
    )
    .expect("candidate document parses");
    let report = verify(&candidate.synthesize().unwrap(), &SpecPaths::config());
    let expect: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| d.to_value().to_compact())
        .collect();
    let got: Vec<String> = diags.iter().map(Value::to_compact).collect();
    assert_eq!(
        got, expect,
        "daemon and `qvisor check` diagnostics must match"
    );

    // Reads are served from the published snapshot.
    let chain = client.rpc(r#"{"op":"get-chain","tenant":"gold"}"#);
    assert_eq!(chain.get("version").and_then(Value::as_u64), Some(2));
    assert!(chain
        .get("chain")
        .and_then(|c| c.get("chain"))
        .and_then(Value::as_str)
        .expect("chain entry")
        .contains("normalize"));
    let missing = client.rpc(r#"{"op":"get-chain","tenant":"silver"}"#);
    assert_eq!(missing.get("ok").and_then(Value::as_bool), Some(false));

    // Submit the rest of the universe, withdraw one, and replay the log.
    let submit_silver = r#"{"op":"submit-policy","tenant":{"id":2,"name":"silver","algorithm":"EDF","rank_min":0,"rank_max":10000,"levels":64}}"#;
    let submit_bronze = r#"{"op":"submit-policy","tenant":{"id":3,"name":"bronze","algorithm":"WFQ","rank_min":0,"rank_max":1000}}"#;
    assert_eq!(
        client
            .rpc(submit_silver)
            .get("version")
            .and_then(Value::as_u64),
        Some(3)
    );
    assert_eq!(
        client
            .rpc(submit_bronze)
            .get("version")
            .and_then(Value::as_u64),
        Some(4)
    );
    let withdrawn = client.rpc(r#"{"op":"withdraw-tenant","tenant":"gold"}"#);
    assert_eq!(withdrawn.get("version").and_then(Value::as_u64), Some(5));

    let status = client.rpc(r#"{"op":"status"}"#);
    assert_eq!(status.get("live").and_then(Value::as_u64), Some(2));
    assert_eq!(status.get("accepted").and_then(Value::as_u64), Some(4));
    assert_eq!(status.get("rejected").and_then(Value::as_u64), Some(1));

    let snapshot = client.rpc(r#"{"op":"snapshot"}"#);
    let canonical = snapshot
        .get("snapshot")
        .expect("snapshot body")
        .to_compact();
    let (version, _) = ChainSnapshot::verify_canonical(&canonical).expect("consistent snapshot");
    assert_eq!(version, 5);

    let log = client.rpc(r#"{"op":"get-log"}"#);
    let entries: Vec<LogEntry> = log
        .get("entries")
        .and_then(Value::as_array)
        .expect("log entries")
        .iter()
        .map(|e| LogEntry::from_value(e).expect("entry parses"))
        .collect();
    assert_eq!(entries.len(), 4);
    let replayed = ControlPlane::replay(&config, false, &entries).expect("replay succeeds");
    assert_eq!(
        replayed.snapshot().canonical,
        canonical,
        "sequential replay rebuilds byte-identical state"
    );

    // Clean shutdown: the requester gets an ack, the subscriber a
    // terminal line, and `wait` returns the summary.
    let down = client.rpc(r#"{"op":"shutdown"}"#);
    assert_eq!(down.get("result").and_then(Value::as_str), Some("shutdown"));
    // One telemetry line per commit since the first read (versions 3..=5),
    // then the terminal stream line.
    for expected_version in [3u64, 4, 5] {
        let line = subscriber.read();
        assert_eq!(
            line.get("type").and_then(Value::as_str),
            Some("telemetry_snapshot")
        );
        assert_eq!(
            line.get("version").and_then(Value::as_u64),
            Some(expected_version)
        );
    }
    let end = subscriber.read();
    assert_eq!(end.get("type").and_then(Value::as_str), Some("stream_end"));
    let summary = daemon.wait();
    assert!(summary.contains("4 accepted"), "{summary}");
}

#[test]
fn deny_warnings_daemon_is_stricter() {
    let config = DeploymentConfig::from_json(&example("config.json")).expect("config parses");
    let daemon = Daemon::start(
        config,
        ServeOptions {
            listen: "127.0.0.1:0".to_string(),
            deny_warnings: true,
        },
    )
    .expect("daemon starts");
    let mut client = Client::connect(&daemon);
    // A tenant whose chain clamps part of its declared range only warns;
    // under --deny-warnings the gate refuses it.
    let r = client.rpc(&example("submit_good.json"));
    // The good document is warning-free: still accepted.
    assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true), "{r:?}");
    daemon.shutdown();
}
