//! Quickstart: the paper's Fig. 3 worked example, end to end.
//!
//! Three tenants rank their traffic with pFabric, EDF, and Fair Queueing;
//! the operator wants `T1 >> T2 + T3`. QVISOR synthesizes per-tenant rank
//! transformations, the pre-processor rewrites packet ranks at line rate,
//! and a PIFO emits the packets in the joint order.
//!
//! Run with: `cargo run --example quickstart`

use qvisor::core::{
    analyze, synthesize, Policy, PreProcessor, SynthConfig, TenantSpec, UnknownTenantAction,
};
use qvisor::ranking::RankRange;
use qvisor::scheduler::{Capacity, PacketQueue, PifoQueue};
use qvisor::sim::{FlowId, Nanos, NodeId, Packet, TenantId};

fn main() {
    // 1. Tenant specifications (§3.1): traffic subset + declared ranks.
    let specs = vec![
        TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(7, 9)).with_levels(3),
        TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(1, 3)).with_levels(2),
        TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(3, 5)).with_levels(2),
    ];

    // 2. Operator policy: T1 isolated on top; T2 and T3 share.
    let policy = Policy::parse("T1 >> T2 + T3").expect("valid policy");
    println!("operator policy : {policy}");

    // 3. Synthesize the joint scheduling function (§3.2).
    let config = SynthConfig {
        first_rank: 1, // the paper's example numbers ranks from 1
        ..SynthConfig::default()
    };
    let joint = synthesize(&specs, &policy, config).expect("synthesis");
    for spec in &specs {
        let chain = joint.chain(spec.id).expect("scheduled tenant");
        println!("  {:<3} {:<8} chain: {chain}", spec.name, spec.algorithm);
    }

    // 4. Static analysis (§2, Idea 2): verify the guarantees.
    let report = analyze(&joint);
    println!("\n{report}");

    // 5. Pre-process the exact packet sequence of Fig. 3 and schedule it
    //    on a PIFO.
    let mut pre = PreProcessor::new(&joint, UnknownTenantAction::BestEffort);
    let arrivals: [(u16, u64); 7] = [(3, 5), (2, 3), (1, 9), (3, 3), (2, 1), (1, 8), (1, 7)];
    let mut pifo = PifoQueue::new(Capacity::UNBOUNDED);
    println!("pre-processor:");
    for (i, (tenant, rank)) in arrivals.into_iter().enumerate() {
        let mut p = Packet::data(
            FlowId(i as u64),
            TenantId(tenant),
            i as u64,
            1500,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        );
        pre.process(&mut p);
        println!("  T{tenant} rank {rank} -> {}", p.txf_rank);
        pifo.enqueue(p, Nanos::ZERO);
    }

    print!("PIFO output     : ");
    while let Some(p) = pifo.dequeue(Nanos::ZERO) {
        print!("T{}({}) ", p.tenant.0, p.txf_rank);
    }
    println!();
    println!("\nT1's packets lead; T2 and T3 interleave — the Fig. 3 outcome.");
}
