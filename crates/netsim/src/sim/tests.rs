use super::*;
use crate::config::SimConfig;
use qvisor_ranking::PFabric;
use qvisor_sim::{gbps, Nanos, TenantId};
use qvisor_topology::Dumbbell;
use qvisor_transport::SizeBucket;

fn dumbbell() -> Dumbbell {
    Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(1))
}

fn base_cfg() -> SimConfig {
    SimConfig {
        horizon: Nanos::from_secs(2),
        ..SimConfig::default()
    }
}

#[test]
fn single_flow_completes_with_sane_fct() {
    let d = dumbbell();
    let mut sim = Simulation::new(d.topology.clone(), base_cfg()).unwrap();
    sim.register_rank_fn(TenantId(1), Box::new(PFabric::default_datacenter()));
    sim.add_flow(NewFlow::new(
        TenantId(1),
        d.senders[0],
        d.receivers[0],
        150_000, // ~103 packets
        Nanos::ZERO,
    ));
    let r = sim.run();
    assert_eq!(r.incomplete_flows, 0);
    assert_eq!(r.fct.count(None), 1);
    let fct = r.fct.mean_fct_ms(None, SizeBucket::ALL).unwrap();
    // Ideal: 150 KB at 1 Gbps ≈ 1.2 ms plus RTTs; must be close.
    assert!(
        (1.0..3.0).contains(&fct),
        "FCT {fct} ms outside sane bounds"
    );
    let t = r.tenant(TenantId(1));
    assert_eq!(t.delivered_bytes, 150_000);
    // pFabric's remaining-size ranks let an elephant's early packets
    // starve behind its own later packets until a timeout refreshes
    // them; a couple of stale duplicates may be priority-dropped.
    assert!(t.dropped_pkts <= 3, "drops {}", t.dropped_pkts);
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let d = dumbbell();
        let mut sim = Simulation::new(d.topology.clone(), base_cfg()).unwrap();
        sim.register_rank_fn(TenantId(1), Box::new(PFabric::default_datacenter()));
        for i in 0..8 {
            sim.add_flow(NewFlow::new(
                TenantId(1),
                d.senders[i % 2],
                d.receivers[(i + 1) % 2],
                20_000 + i as u64 * 7_000,
                Nanos::from_micros(i as u64 * 13),
            ));
        }
        let r = sim.run();
        (
            r.events,
            r.end_time,
            r.fct.mean_fct_ms(None, SizeBucket::ALL),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn congestion_drops_and_recovers() {
    // Two senders at 1 Gbps into a 0.5 Gbps bottleneck: drops must
    // occur, yet every flow completes via retransmission.
    let d = Dumbbell::build(2, gbps(1), 500_000_000, Nanos::from_micros(1));
    let mut sim = Simulation::new(d.topology.clone(), base_cfg()).unwrap();
    sim.register_rank_fn(TenantId(1), Box::new(PFabric::default_datacenter()));
    for i in 0..2 {
        sim.add_flow(NewFlow::new(
            TenantId(1),
            d.senders[i],
            d.receivers[i],
            400_000,
            Nanos::ZERO,
        ));
    }
    let r = sim.run();
    assert_eq!(r.incomplete_flows, 0);
    let t = r.tenant(TenantId(1));
    assert!(t.dropped_pkts > 0, "bottleneck must drop");
    assert_eq!(t.delivered_bytes, 800_000);
}

#[test]
fn random_loss_is_survivable() {
    let d = dumbbell();
    let cfg = SimConfig {
        random_loss: 0.05,
        ..base_cfg()
    };
    let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
    sim.add_flow(NewFlow::new(
        TenantId(1),
        d.senders[0],
        d.receivers[0],
        100_000,
        Nanos::ZERO,
    ));
    let r = sim.run();
    assert_eq!(r.incomplete_flows, 0);
    assert!(r.random_losses > 0, "5% loss over ~140 packets");
}

#[test]
fn cbr_stream_delivers_and_tracks_deadlines() {
    let d = dumbbell();
    let mut sim = Simulation::new(d.topology.clone(), base_cfg()).unwrap();
    sim.add_cbr(NewCbr {
        tenant: TenantId(2),
        src: d.senders[0],
        dst: d.receivers[0],
        rate_bps: 100_000_000,
        pkt_size: 1_500,
        start: Nanos::ZERO,
        stop: Nanos::from_millis(1),
        deadline_offset: Nanos::from_micros(200),
    });
    let r = sim.run();
    let t = r.tenant(TenantId(2));
    // 100 Mbps, 1500 B -> one packet per 120 us -> 9 packets in 1 ms
    // (t=0 inclusive), all delivered well within 200 us on an idle path.
    assert!(t.delivered_pkts >= 8, "got {}", t.delivered_pkts);
    assert_eq!(t.deadline_missed, 0);
    assert_eq!(t.deadline_hit_rate(), Some(1.0));
}

#[test]
fn pifo_prioritizes_small_flow_under_contention() {
    // One elephant and one mouse share a bottleneck; with pFabric ranks
    // on a PIFO, the mouse's FCT must be near-ideal.
    let d = Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(1));
    let mut sim = Simulation::new(d.topology.clone(), base_cfg()).unwrap();
    sim.register_rank_fn(TenantId(1), Box::new(PFabric::default_datacenter()));
    // Elephant from sender 0, mouse from sender 1, same receiver.
    sim.add_flow(NewFlow::new(
        TenantId(1),
        d.senders[0],
        d.receivers[0],
        5_000_000,
        Nanos::ZERO,
    ));
    sim.add_flow(NewFlow::new(
        TenantId(1),
        d.senders[1],
        d.receivers[0],
        20_000,
        Nanos::from_millis(5), // arrives mid-elephant
    ));
    let r = sim.run();
    assert_eq!(r.incomplete_flows, 0);
    let small = r.fct.mean_fct_ms(None, SizeBucket::SMALL).unwrap();
    // Ideal ~0.2 ms; generous bound that FIFO would blow through.
    assert!(small < 1.0, "mouse FCT {small} ms too slow under PIFO");
}

#[test]
fn telemetry_observes_the_run() {
    let d = dumbbell();
    let telemetry = qvisor_telemetry::Telemetry::enabled();
    let cfg = SimConfig {
        telemetry: telemetry.clone(),
        ..base_cfg()
    };
    let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(TenantId(1), Box::new(PFabric::default_datacenter()));
    sim.add_flow(NewFlow::new(
        TenantId(1),
        d.senders[0],
        d.receivers[0],
        150_000,
        Nanos::ZERO,
    ));
    let r = sim.run();
    assert_eq!(r.incomplete_flows, 0);
    // Per-tenant counters agree with the report.
    let t1 = [("tenant", "T1")];
    assert_eq!(
        telemetry.counter("net_sent_pkts", &t1).get(),
        r.tenant(TenantId(1)).sent_pkts
    );
    assert_eq!(telemetry.counter("net_delivered_bytes", &t1).get(), 150_000);
    assert_eq!(telemetry.histogram("net_fct_ns", &t1).count(), 1);
    // Port queues and links reported through the same registry, and the
    // export round-trips through the report parser.
    let jsonl = telemetry.export_jsonl();
    assert!(jsonl.contains("sched_dequeued_pkts"));
    assert!(jsonl.contains("sched_sojourn_ns"));
    assert!(jsonl.contains("net_link_tx_bytes"));
    assert!(jsonl.contains("flow_complete"));
    let export = qvisor_telemetry::report::parse(&jsonl).unwrap();
    assert!(!export.counters.is_empty());
}

/// Run the same workload sequentially and sharded; the reports must be
/// *equal in every field*, and the sanitized telemetry exports must be
/// byte-identical — the sharded engine's contract.
///
/// `make_cfg` is a factory, not a value: a `SimConfig` carries `Rc`-based
/// telemetry handles, so each worker thread must construct its own.
fn assert_shards_match<C, P>(d: &Dumbbell, make_cfg: C, shards: usize, populate: P)
where
    C: Fn() -> SimConfig + Sync,
    P: Fn(&mut Simulation) -> Result<(), qvisor_core::QvisorError> + Sync,
{
    use crate::scenario::sanitize_export;
    use qvisor_telemetry::Telemetry;
    let seq_telemetry = Telemetry::enabled();
    let sequential = {
        let cfg = SimConfig {
            telemetry: seq_telemetry.clone(),
            ..make_cfg()
        };
        let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
        populate(&mut sim).unwrap();
        sim.run()
    };
    let sink = Telemetry::enabled();
    let build = || {
        Simulation::new(
            d.topology.clone(),
            SimConfig {
                telemetry: Telemetry::enabled(),
                ..make_cfg()
            },
        )
    };
    let sharded = run_sharded(&d.topology, shards, &sink, build, populate).unwrap();
    assert_eq!(sequential, sharded, "shards={shards}");
    assert_eq!(
        sanitize_export(&seq_telemetry.export_jsonl()),
        sanitize_export(&sink.export_jsonl()),
        "telemetry diverged at shards={shards}"
    );
}

#[test]
fn sharded_run_matches_sequential_under_congestion() {
    // Two senders into a half-rate bottleneck: drops, retransmissions,
    // and cross-shard traffic in both directions (data one way, ACKs the
    // other), with goodput sampling on.
    let d = Dumbbell::build(2, gbps(1), 500_000_000, Nanos::from_micros(1));
    let cfg = || SimConfig {
        sample_interval: Some(Nanos::from_millis(1)),
        ..base_cfg()
    };
    for shards in [1, 2] {
        assert_shards_match(&d, cfg, shards, |sim| {
            sim.register_rank_fn(TenantId(1), Box::new(PFabric::default_datacenter()));
            sim.register_rank_fn(TenantId(2), Box::new(PFabric::default_datacenter()));
            for i in 0..2 {
                sim.add_flow(NewFlow::new(
                    TenantId(1 + i as u16),
                    d.senders[i],
                    d.receivers[i],
                    400_000,
                    Nanos::ZERO,
                ));
            }
            Ok(())
        });
    }
}

#[test]
fn sharded_run_matches_sequential_with_cbr_and_loss() {
    let d = Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(5));
    let cfg = || SimConfig {
        random_loss: 0.02,
        sample_interval: Some(Nanos::from_micros(250)),
        ..base_cfg()
    };
    for shards in [1, 2] {
        assert_shards_match(&d, cfg, shards, |sim| {
            sim.register_rank_fn(TenantId(1), Box::new(PFabric::default_datacenter()));
            sim.add_flow(NewFlow::new(
                TenantId(1),
                d.senders[0],
                d.receivers[1],
                120_000,
                Nanos::ZERO,
            ));
            sim.add_cbr(NewCbr {
                tenant: TenantId(2),
                src: d.senders[1],
                dst: d.receivers[0],
                rate_bps: 200_000_000,
                pkt_size: 1_500,
                start: Nanos::ZERO,
                stop: Nanos::from_millis(1),
                deadline_offset: Nanos::from_micros(200),
            });
            Ok(())
        });
    }
}

#[test]
fn sharded_run_matches_sequential_at_the_horizon() {
    // A flow too big to finish: the run must exhaust the horizon, and the
    // incomplete accounting must match.
    let d = dumbbell();
    let cfg = || SimConfig {
        horizon: Nanos::from_micros(300),
        sample_interval: Some(Nanos::from_micros(100)),
        ..SimConfig::default()
    };
    for shards in [1, 2] {
        assert_shards_match(&d, cfg, shards, |sim| {
            sim.add_flow(NewFlow::new(
                TenantId(1),
                d.senders[0],
                d.receivers[0],
                10_000_000,
                Nanos::ZERO,
            ));
            Ok(())
        });
    }
}

#[test]
fn sharded_run_rejects_adaptation() {
    let d = dumbbell();
    let err = run_sharded(
        &d.topology,
        2,
        &qvisor_telemetry::Telemetry::disabled(),
        || {
            Simulation::new(
                d.topology.clone(),
                SimConfig {
                    adaptation_interval: Some(Nanos::from_millis(1)),
                    ..base_cfg()
                },
            )
        },
        |_| Ok(()),
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("adaptation"), "unexpected error: {msg}");
}

#[test]
fn sharded_run_rejects_too_many_shards() {
    let d = dumbbell();
    let err = run_sharded(
        &d.topology,
        9,
        &qvisor_telemetry::Telemetry::disabled(),
        || Simulation::new(d.topology.clone(), base_cfg()),
        |_| Ok(()),
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("shard"), "unexpected error: {msg}");
}

#[test]
fn rejects_non_host_endpoints() {
    let d = dumbbell();
    let mut sim = Simulation::new(d.topology.clone(), base_cfg()).unwrap();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.add_flow(NewFlow::new(
            TenantId(1),
            d.left_switch,
            d.receivers[0],
            1_000,
            Nanos::ZERO,
        ));
    }));
    assert!(result.is_err());
}
