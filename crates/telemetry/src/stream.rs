//! Fan-out snapshot streaming for long-running processes.
//!
//! The control-plane daemon publishes a telemetry snapshot after every
//! committed reconfiguration; any number of subscribers (TCP sessions
//! serving `subscribe-telemetry`) receive each published line. The bus is
//! deliberately minimal and thread-safe without any feature gating — it
//! carries already-serialised JSON lines, so it works identically whether
//! the `enabled` telemetry feature is on (real snapshots) or off (empty
//! exports).
//!
//! Delivery is at-most-once per subscriber and never blocks the publisher:
//! each subscriber owns a **bounded** queue
//! ([`DEFAULT_SUBSCRIBER_CAPACITY`] lines). A subscriber that stops
//! draining does not grow the daemon's heap without bound — on overflow
//! the oldest queued line is dropped and counted in
//! [`SnapshotBus::dropped_lines`], which the daemon surfaces in `status`
//! as `bus_lines_dropped`. Subscribers that have hung up are pruned on
//! the next publish.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::RecvError;
use std::sync::{Arc, Condvar, Mutex};

/// Default bound on each subscriber's queued-line backlog.
pub const DEFAULT_SUBSCRIBER_CAPACITY: usize = 1024;

#[derive(Debug, Default)]
struct SlotState {
    lines: VecDeque<String>,
    closed: bool,
}

#[derive(Debug, Default)]
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

/// The receiving end of one [`SnapshotBus`] subscription.
///
/// Mirrors the blocking/non-blocking read surface of
/// `std::sync::mpsc::Receiver` so call sites can drain it the same way.
/// Dropping the receiver unsubscribes (pruned on the next publish).
#[derive(Debug)]
pub struct BusReceiver {
    slot: Arc<Slot>,
}

impl BusReceiver {
    /// Block until a line is available (or the bus is gone). Returns
    /// `Err` only when the bus has been dropped and the backlog is empty.
    pub fn recv(&self) -> Result<String, RecvError> {
        let mut st = self.slot.state.lock().expect("snapshot bus poisoned");
        loop {
            if let Some(line) = st.lines.pop_front() {
                return Ok(line);
            }
            if st.closed {
                return Err(RecvError);
            }
            st = self.slot.ready.wait(st).expect("snapshot bus poisoned");
        }
    }

    /// Drain every line currently queued, without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = String> {
        let mut st = self.slot.state.lock().expect("snapshot bus poisoned");
        std::mem::take(&mut st.lines).into_iter()
    }
}

impl Drop for BusReceiver {
    fn drop(&mut self) {
        self.slot
            .state
            .lock()
            .expect("snapshot bus poisoned")
            .closed = true;
    }
}

/// A broadcast bus for serialized telemetry snapshot lines.
///
/// Cloneless by design: share it behind an `Arc`. Publishing walks the
/// subscriber list under a short mutex; queue pushes are non-blocking and
/// bounded per subscriber (drop-oldest on overflow).
#[derive(Debug)]
pub struct SnapshotBus {
    subscribers: Mutex<Vec<Arc<Slot>>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Default for SnapshotBus {
    fn default() -> SnapshotBus {
        SnapshotBus::with_capacity(DEFAULT_SUBSCRIBER_CAPACITY)
    }
}

impl SnapshotBus {
    /// Create an empty bus with the default per-subscriber queue bound.
    pub fn new() -> SnapshotBus {
        SnapshotBus::default()
    }

    /// Create an empty bus bounding each subscriber queue to `capacity`
    /// lines (a capacity of 0 keeps one line).
    pub fn with_capacity(capacity: usize) -> SnapshotBus {
        SnapshotBus {
            subscribers: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Register a new subscriber; every subsequent [`publish`](Self::publish)
    /// queues one line for the returned receiver, up to the queue bound.
    /// Dropping the receiver unsubscribes (pruned on the next publish).
    pub fn subscribe(&self) -> BusReceiver {
        let slot = Arc::new(Slot::default());
        self.subscribers
            .lock()
            .expect("snapshot bus poisoned")
            .push(Arc::clone(&slot));
        BusReceiver { slot }
    }

    /// Deliver `line` to every live subscriber, pruning closed ones. On a
    /// full subscriber queue the oldest line is dropped (and counted) so
    /// a stalled subscriber sees the most recent snapshots when it
    /// resumes. Returns the number of subscribers that received the line.
    pub fn publish(&self, line: &str) -> usize {
        let mut subs = self.subscribers.lock().expect("snapshot bus poisoned");
        let mut dropped = 0u64;
        subs.retain(|slot| {
            let mut st = slot.state.lock().expect("snapshot bus poisoned");
            if st.closed {
                return false;
            }
            if st.lines.len() >= self.capacity {
                st.lines.pop_front();
                dropped += 1;
            }
            st.lines.push_back(line.to_string());
            slot.ready.notify_one();
            true
        });
        if dropped > 0 {
            self.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
        subs.len()
    }

    /// Total lines dropped across all subscribers due to full queues.
    pub fn dropped_lines(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of currently registered subscribers (including any that have
    /// hung up but have not yet been pruned by a publish).
    pub fn len(&self) -> usize {
        self.subscribers
            .lock()
            .expect("snapshot bus poisoned")
            .len()
    }

    /// True when no subscribers are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for SnapshotBus {
    fn drop(&mut self) {
        // Wake blocked receivers so recv() returns Err instead of hanging.
        let subs = self.subscribers.lock().expect("snapshot bus poisoned");
        for slot in subs.iter() {
            slot.state.lock().expect("snapshot bus poisoned").closed = true;
            slot.ready.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_reaches_every_subscriber() {
        let bus = SnapshotBus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        assert_eq!(bus.publish("snap-1"), 2);
        assert_eq!(a.recv().unwrap(), "snap-1");
        assert_eq!(b.recv().unwrap(), "snap-1");
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let bus = SnapshotBus::new();
        let a = bus.subscribe();
        let b = bus.subscribe();
        drop(b);
        assert_eq!(bus.publish("snap"), 1);
        assert_eq!(a.recv().unwrap(), "snap");
        assert_eq!(bus.len(), 1);
    }

    #[test]
    fn publish_without_subscribers_is_fine() {
        let bus = SnapshotBus::new();
        assert!(bus.is_empty());
        assert_eq!(bus.publish("snap"), 0);
    }

    #[test]
    fn cross_thread_delivery() {
        let bus = Arc::new(SnapshotBus::new());
        let rx = bus.subscribe();
        let publisher = {
            let bus = Arc::clone(&bus);
            std::thread::spawn(move || {
                for i in 0..10u32 {
                    bus.publish(&format!("line-{i}"));
                }
            })
        };
        publisher.join().unwrap();
        let got: Vec<String> = rx.try_iter().collect();
        assert_eq!(got.len(), 10);
        assert_eq!(got[9], "line-9");
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let bus = SnapshotBus::with_capacity(4);
        let rx = bus.subscribe();
        for i in 0..10u32 {
            bus.publish(&format!("line-{i}"));
        }
        assert_eq!(bus.dropped_lines(), 6);
        let got: Vec<String> = rx.try_iter().collect();
        assert_eq!(got, vec!["line-6", "line-7", "line-8", "line-9"]);
    }

    #[test]
    fn overflow_counts_per_subscriber() {
        let bus = SnapshotBus::with_capacity(1);
        let _a = bus.subscribe();
        let _b = bus.subscribe();
        bus.publish("one");
        bus.publish("two");
        bus.publish("three");
        // Two full queues, two publishes past capacity each.
        assert_eq!(bus.dropped_lines(), 4);
    }

    #[test]
    fn dropping_the_bus_unblocks_recv() {
        let bus = Arc::new(SnapshotBus::new());
        let rx = bus.subscribe();
        bus.publish("last");
        drop(bus);
        assert_eq!(rx.recv().unwrap(), "last");
        assert!(rx.recv().is_err(), "closed bus with empty backlog errors");
    }

    #[test]
    fn blocked_recv_wakes_on_publish() {
        let bus = Arc::new(SnapshotBus::new());
        let rx = bus.subscribe();
        let publisher = {
            let bus = Arc::clone(&bus);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                bus.publish("wake");
            })
        };
        assert_eq!(rx.recv().unwrap(), "wake");
        publisher.join().unwrap();
    }
}
