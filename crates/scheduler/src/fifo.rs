//! Tail-drop FIFO queue — the baseline "commodity" scheduler.

use crate::queue::{Capacity, Enqueue, PacketQueue};
use qvisor_sim::{Nanos, Packet, Rank};
use std::collections::VecDeque;

/// A first-in first-out queue with tail drop. Ranks are ignored entirely —
/// this is the paper's worst-case baseline (Fig. 4 "FIFO").
#[derive(Debug)]
pub struct FifoQueue {
    queue: VecDeque<Packet>,
    capacity: Capacity,
    bytes: u64,
}

impl FifoQueue {
    /// An empty FIFO with the given byte capacity.
    pub fn new(capacity: Capacity) -> FifoQueue {
        FifoQueue {
            queue: VecDeque::new(),
            capacity,
            bytes: 0,
        }
    }
}

impl PacketQueue for FifoQueue {
    fn enqueue(&mut self, p: Packet, _now: Nanos) -> Enqueue {
        if !self.capacity.fits(self.bytes, p.size as u64) {
            return Enqueue::Rejected(Box::new(p));
        }
        self.bytes += p.size as u64;
        self.queue.push_back(p);
        Enqueue::Accepted
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        let p = self.queue.pop_front()?;
        self.bytes -= p.size as u64;
        Some(p)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn head_rank(&self) -> Option<Rank> {
        self.queue.front().map(|p| p.txf_rank)
    }

    fn kind(&self) -> &'static str {
        "fifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvisor_sim::{FlowId, NodeId, TenantId};

    fn pkt(seq: u64, rank: Rank, size: u32) -> Packet {
        let mut p = Packet::data(
            FlowId(1),
            TenantId(0),
            seq,
            size,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        );
        p.txf_rank = rank;
        p
    }

    #[test]
    fn fifo_order_ignores_rank() {
        let mut q = FifoQueue::new(Capacity::UNBOUNDED);
        q.enqueue(pkt(0, 9, 100), Nanos::ZERO);
        q.enqueue(pkt(1, 1, 100), Nanos::ZERO);
        q.enqueue(pkt(2, 5, 100), Nanos::ZERO);
        let out: Vec<u64> = std::iter::from_fn(|| q.dequeue(Nanos::ZERO))
            .map(|p| p.seq)
            .collect();
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn tail_drop_when_full() {
        let mut q = FifoQueue::new(Capacity::bytes(250));
        assert!(q.enqueue(pkt(0, 0, 100), Nanos::ZERO).accepted());
        assert!(q.enqueue(pkt(1, 0, 100), Nanos::ZERO).accepted());
        let r = q.enqueue(pkt(2, 0, 100), Nanos::ZERO);
        assert!(!r.accepted());
        assert_eq!(q.len(), 2);
        assert_eq!(q.bytes(), 200);
        // a smaller packet still fits
        assert!(q.enqueue(pkt(3, 0, 50), Nanos::ZERO).accepted());
        assert_eq!(q.bytes(), 250);
    }

    #[test]
    fn byte_accounting_across_dequeue() {
        let mut q = FifoQueue::new(Capacity::bytes(300));
        q.enqueue(pkt(0, 0, 200), Nanos::ZERO);
        q.dequeue(Nanos::ZERO);
        assert_eq!(q.bytes(), 0);
        assert!(q.is_empty());
        assert!(q.enqueue(pkt(1, 0, 300), Nanos::ZERO).accepted());
    }

    #[test]
    fn head_rank_reports_front() {
        let mut q = FifoQueue::new(Capacity::UNBOUNDED);
        assert_eq!(q.head_rank(), None);
        q.enqueue(pkt(0, 7, 10), Nanos::ZERO);
        q.enqueue(pkt(1, 3, 10), Nanos::ZERO);
        assert_eq!(q.head_rank(), Some(7));
    }
}
