//! `serve_load` — churn harness for the `qvisor serve` control plane.
//!
//! Drives a large tenant universe through concurrent submit/withdraw churn
//! over real TCP connections and checks the daemon's two consistency
//! stories:
//!
//! 1. **No torn chain reads.** Reader threads hammer `snapshot` and
//!    `get-chain` throughout the churn; every snapshot's FNV-1a
//!    fingerprint must match its bytes, and versions observed on one
//!    connection must never go backwards.
//! 2. **Replay determinism.** After the churn, the daemon's
//!    accepted-mutation log is fetched and replayed *sequentially*
//!    through a fresh in-process [`ControlPlane`]; the resulting
//!    canonical snapshot must be byte-identical to the daemon's final
//!    `snapshot` response — the same merge trick the sweep runner uses
//!    for byte-identical output at any `--jobs` level.
//!
//! Usage: `serve_load [--smoke] [--tenants N] [--workers N] [--readers N]`
//! (defaults: 1024 tenants, 8 writers, 4 readers; `--smoke` shrinks to a
//! CI-sized run). Exits non-zero on any violation.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use qvisor_core::config_api::{DeploymentConfig, SynthOptions, TenantConfig};
use qvisor_serve::{ChainSnapshot, ControlPlane, Daemon, LogEntry, ServeOptions};
use qvisor_sim::json::Value;

struct Args {
    tenants: usize,
    workers: usize,
    readers: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        tenants: 1024,
        workers: 8,
        readers: 4,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => {
                args.tenants = 64;
                args.workers = 4;
                args.readers = 2;
                i += 1;
            }
            "--tenants" => {
                args.tenants = argv[i + 1].parse().expect("--tenants N");
                i += 2;
            }
            "--workers" => {
                args.workers = argv[i + 1].parse().expect("--workers N");
                i += 2;
            }
            "--readers" => {
                args.readers = argv[i + 1].parse().expect("--readers N");
                i += 2;
            }
            other => {
                eprintln!("serve_load: unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    assert!(args.tenants >= args.workers, "need >= 1 tenant per worker");
    args
}

/// A universe of `n` tenants, composed as share groups of 8 joined by
/// strict priority (`a + b + … >> …`) — wide enough that every submission
/// reshapes real band geometry.
fn universe(n: usize) -> DeploymentConfig {
    let tenants: Vec<TenantConfig> = (0..n)
        .map(|i| TenantConfig {
            id: u16::try_from(i + 1).expect("tenant id fits u16"),
            name: format!("t{:04}", i + 1),
            algorithm: if i % 2 == 0 { "pFabric" } else { "EDF" }.to_string(),
            rank_min: 0,
            rank_max: 255,
            levels: Some(16),
        })
        .collect();
    let policy = tenants
        .chunks(8)
        .map(|group| {
            group
                .iter()
                .map(|t| t.name.as_str())
                .collect::<Vec<_>>()
                .join(" + ")
        })
        .collect::<Vec<_>>()
        .join(" >> ");
    DeploymentConfig {
        tenants,
        policy,
        synth: SynthOptions {
            first_rank: 2,
            ..SynthOptions::default()
        },
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn rpc(&mut self, line: &str) -> Value {
        writeln!(self.writer, "{line}").expect("write request");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read response");
        Value::parse(response.trim()).expect("response is JSON")
    }

    fn ok(v: &Value) -> bool {
        v.get("ok").and_then(Value::as_bool) == Some(true)
    }
}

fn submit_line(t: &TenantConfig) -> String {
    qvisor_serve::Request::SubmitPolicy(t.clone()).to_line()
}

fn main() {
    let args = parse_args();
    let config = universe(args.tenants);
    let daemon = Daemon::start(
        config.clone(),
        ServeOptions {
            listen: "127.0.0.1:0".to_string(),
            deny_warnings: false,
        },
    )
    .expect("daemon starts");
    let addr = daemon.local_addr();
    println!(
        "serve_load: {} tenants, {} writers, {} readers on {addr}",
        args.tenants, args.workers, args.readers
    );

    let done = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let torn = Arc::new(AtomicU64::new(0));

    // Readers: verify every snapshot fingerprint and per-connection
    // version monotonicity while the writers churn.
    let reader_handles: Vec<_> = (0..args.readers)
        .map(|r| {
            let done = Arc::clone(&done);
            let reads = Arc::clone(&reads);
            let torn = Arc::clone(&torn);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut last_version = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let response = client.rpc(r#"{"op":"snapshot"}"#);
                    let snap = response.get("snapshot").expect("snapshot body");
                    let canonical = snap.to_compact();
                    match ChainSnapshot::verify_canonical(&canonical) {
                        Ok((version, _)) => {
                            if version < last_version {
                                eprintln!(
                                    "reader {r}: version went backwards \
                                     ({last_version} -> {version})"
                                );
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                            last_version = version;
                        }
                        Err(e) => {
                            eprintln!("reader {r}: {e}");
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let chain = client.rpc(r#"{"op":"get-chain"}"#);
                    if !Client::ok(&chain) {
                        eprintln!("reader {r}: get-chain failed: {}", chain.to_compact());
                        torn.fetch_add(1, Ordering::Relaxed);
                    }
                    reads.fetch_add(2, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Writers: disjoint tenant slices; submit everything, withdraw a
    // third, resubmit a sixth, and sprinkle deterministic bad
    // submissions that must be rejected without touching state.
    let chunk = args.tenants.div_ceil(args.workers);
    let accepted_total = Arc::new(AtomicU64::new(0));
    let rejected_total = Arc::new(AtomicU64::new(0));
    let writer_handles: Vec<_> = (0..args.workers)
        .map(|w| {
            let slice: Vec<TenantConfig> = config
                .tenants
                .iter()
                .skip(w * chunk)
                .take(chunk)
                .cloned()
                .collect();
            let accepted_total = Arc::clone(&accepted_total);
            let rejected_total = Arc::clone(&rejected_total);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut accepted = 0u64;
                let mut rejected = 0u64;
                for (i, tenant) in slice.iter().enumerate() {
                    let r = client.rpc(&submit_line(tenant));
                    assert!(Client::ok(&r), "worker {w}: submit: {}", r.to_compact());
                    accepted += 1;
                    if i % 7 == 0 {
                        // Wrong id: structurally rejected, state untouched.
                        let mut bad = tenant.clone();
                        bad.id = 0;
                        let r = client.rpc(&submit_line(&bad));
                        assert!(!Client::ok(&r), "worker {w}: bad id accepted");
                        rejected += 1;
                    }
                    if i % 3 == 0 {
                        let r = client.rpc(
                            &qvisor_serve::Request::WithdrawTenant(tenant.name.clone()).to_line(),
                        );
                        assert!(Client::ok(&r), "worker {w}: withdraw: {}", r.to_compact());
                        accepted += 1;
                    }
                    if i % 6 == 0 {
                        // Resubmit with a revised spec: update-in-place.
                        let mut revised = tenant.clone();
                        revised.levels = Some(8);
                        let r = client.rpc(&submit_line(&revised));
                        assert!(Client::ok(&r), "worker {w}: resubmit: {}", r.to_compact());
                        accepted += 1;
                    }
                }
                accepted_total.fetch_add(accepted, Ordering::Relaxed);
                rejected_total.fetch_add(rejected, Ordering::Relaxed);
            })
        })
        .collect();

    for handle in writer_handles {
        handle.join().expect("writer thread");
    }
    done.store(true, Ordering::Relaxed);
    for handle in reader_handles {
        handle.join().expect("reader thread");
    }

    // Final state, accepted log, and clean shutdown over one connection.
    let mut client = Client::connect(addr);
    let status = client.rpc(r#"{"op":"status"}"#);
    let final_snapshot = client.rpc(r#"{"op":"snapshot"}"#);
    let log = client.rpc(r#"{"op":"get-log"}"#);
    let down = client.rpc(r#"{"op":"shutdown"}"#);
    assert!(Client::ok(&down), "shutdown: {}", down.to_compact());
    let summary = daemon.wait();
    print!("{summary}");

    let accepted = accepted_total.load(Ordering::Relaxed);
    let rejected = rejected_total.load(Ordering::Relaxed);
    let daemon_canonical = final_snapshot
        .get("snapshot")
        .expect("snapshot body")
        .to_compact();
    let (final_version, _) =
        ChainSnapshot::verify_canonical(&daemon_canonical).expect("final snapshot consistent");

    // Every accepted mutation bumps the version exactly once.
    assert_eq!(
        final_version,
        1 + accepted,
        "version must count accepted mutations"
    );
    assert_eq!(
        status.get("accepted").and_then(Value::as_u64),
        Some(accepted),
        "status accepted count"
    );
    assert!(
        status.get("rejected").and_then(Value::as_u64) >= Some(rejected),
        "status rejected count"
    );

    // Sequential replay of the accepted log must rebuild the byte-exact
    // final state.
    let entries: Vec<LogEntry> = log
        .get("entries")
        .and_then(Value::as_array)
        .expect("log entries")
        .iter()
        .map(|e| LogEntry::from_value(e).expect("log entry parses"))
        .collect();
    assert_eq!(entries.len() as u64, accepted, "log length");
    let replayed = ControlPlane::replay(&config, false, &entries).expect("replay succeeds");
    let replay_canonical = replayed.snapshot().canonical.clone();
    assert_eq!(
        daemon_canonical, replay_canonical,
        "replayed state must be byte-identical to the daemon's final snapshot"
    );

    let torn_reads = torn.load(Ordering::Relaxed);
    println!(
        "serve_load: OK — {accepted} accepted, {rejected} rejected, {} verified reads, \
         {torn_reads} torn, final version {final_version}, replay byte-identical",
        reads.load(Ordering::Relaxed)
    );
    assert_eq!(torn_reads, 0, "torn chain reads observed");
}
