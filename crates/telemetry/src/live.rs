//! The real collectors, compiled when the `enabled` feature is on.

use crate::hist::LogHistogram;
use crate::journal::{Journal, JournalEvent};
use crate::profile::{ProfileStat, Profiler};
use crate::{DEFAULT_JOURNAL_CAPACITY, SCHEMA_VERSION};
use qvisor_sim::json::Value;
use qvisor_sim::Nanos;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Metric identity: name plus sorted `(label, value)` pairs.
type MetricKey = (String, Vec<(String, String)>);

fn metric_key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    (name.to_string(), labels)
}

fn labels_json(labels: &[(String, String)]) -> Value {
    let mut obj = Value::object();
    for (k, v) in labels {
        obj = obj.set(k, v.as_str());
    }
    obj
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<MetricKey, Rc<Cell<u64>>>,
    gauges: BTreeMap<MetricKey, Rc<Cell<i64>>>,
    histograms: BTreeMap<MetricKey, Rc<RefCell<LogHistogram>>>,
    profiles: BTreeMap<String, Rc<RefCell<ProfileStat>>>,
    journal: Journal,
}

/// A `Send` snapshot of one registry's contents — the hand-off format
/// between sharded-simulation worker threads (whose registries are
/// thread-local `Rc` graphs) and the coordinator registry that merges and
/// exports them. Opaque: produced by [`Telemetry::snapshot`], consumed by
/// [`Telemetry::absorb`].
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    counters: Vec<(MetricKey, u64)>,
    gauges: Vec<(MetricKey, i64)>,
    histograms: Vec<(MetricKey, LogHistogram)>,
    profiles: Vec<(String, ProfileStat)>,
    events: Vec<JournalEvent>,
    journal_evicted: u64,
}

// The whole point of the snapshot is to cross a thread boundary.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<TelemetrySnapshot>();
};

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Clone, Default)]
pub struct Counter(Option<Rc<Cell<u64>>>);

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.set(c.get().wrapping_add(n));
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.get())
    }
}

/// A last-value gauge. Cloning shares the underlying cell.
#[derive(Clone, Default)]
pub struct Gauge(Option<Rc<Cell<i64>>>);

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.set(v);
        }
    }

    /// Adjust the value by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.set(g.get().wrapping_add(delta));
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.get())
    }
}

/// A log-bucketed histogram handle. Cloning shares the underlying histogram.
#[derive(Clone, Default)]
pub struct Histogram(Option<Rc<RefCell<LogHistogram>>>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count={})", self.count())
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.borrow_mut().record(v);
        }
    }

    /// Number of recorded samples (0 when disabled).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.borrow().count())
    }

    /// Nearest-rank quantile estimate (`None` when disabled or empty).
    pub fn quantile(&self, p: f64) -> Option<u64> {
        self.0.as_ref().and_then(|h| h.borrow().quantile(p))
    }
}

/// Entry point to the telemetry subsystem.
///
/// Cheaply cloneable; clones share one registry. The default value is
/// *disabled*: every handle it hands out is a no-op and exports are empty.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Rc<RefCell<Registry>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(_) => write!(f, "Telemetry(enabled)"),
            None => write!(f, "Telemetry(disabled)"),
        }
    }
}

impl Telemetry {
    /// A collecting instance with the default journal capacity.
    pub fn enabled() -> Telemetry {
        Telemetry::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A collecting instance retaining at most `capacity` journal events.
    pub fn with_journal_capacity(capacity: usize) -> Telemetry {
        Telemetry {
            inner: Some(Rc::new(RefCell::new(Registry {
                journal: Journal::new(capacity),
                ..Registry::default()
            }))),
        }
    }

    /// A non-collecting instance (same as `Telemetry::default()`).
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// Whether this handle collects anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The journal's retained-event bound, `None` when disabled — lets the
    /// sharded engine give worker registries the same bound as the sink.
    pub fn journal_capacity(&self) -> Option<usize> {
        self.inner
            .as_ref()
            .map(|reg| reg.borrow().journal.capacity())
    }

    /// Register (or re-fetch) the counter `name` with the given labels.
    ///
    /// Re-registering with the same name and labels returns a handle to the
    /// same underlying cell, so independent components can share a metric.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        Counter(self.inner.as_ref().map(|reg| {
            Rc::clone(
                reg.borrow_mut()
                    .counters
                    .entry(metric_key(name, labels))
                    .or_default(),
            )
        }))
    }

    /// Register (or re-fetch) the gauge `name` with the given labels.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge(self.inner.as_ref().map(|reg| {
            Rc::clone(
                reg.borrow_mut()
                    .gauges
                    .entry(metric_key(name, labels))
                    .or_default(),
            )
        }))
    }

    /// Register (or re-fetch) the histogram `name` with the given labels.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        Histogram(self.inner.as_ref().map(|reg| {
            Rc::clone(
                reg.borrow_mut()
                    .histograms
                    .entry(metric_key(name, labels))
                    .or_default(),
            )
        }))
    }

    /// Register (or re-fetch) the wall-clock profiler for the site `name`.
    ///
    /// See [`crate::profile`]: the returned handle aggregates scoped timer
    /// measurements that surface in the `profile` section of exports.
    pub fn profiler(&self, name: &str) -> Profiler {
        Profiler(self.inner.as_ref().map(|reg| {
            Rc::clone(
                reg.borrow_mut()
                    .profiles
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Append a structured event to the journal at simulated time `t`.
    ///
    /// When the bounded journal evicts an older event to make room, the
    /// `telemetry_journal_dropped` counter is bumped so a truncated journal
    /// is visible in reports instead of silently looking complete.
    pub fn event(&self, t: Nanos, kind: &str, fields: &[(&str, Value)]) {
        if let Some(reg) = &self.inner {
            let mut reg = reg.borrow_mut();
            let dropped = reg.journal.push(JournalEvent {
                t,
                kind: kind.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
            if dropped {
                let cell = reg
                    .counters
                    .entry(metric_key("telemetry_journal_dropped", &[]))
                    .or_default();
                cell.set(cell.get() + 1);
            }
        }
    }

    /// Copy everything collected so far into a [`TelemetrySnapshot`] that
    /// can be sent across threads (empty when disabled).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(reg) = &self.inner else {
            return TelemetrySnapshot::default();
        };
        let reg = reg.borrow();
        TelemetrySnapshot {
            counters: reg
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: reg
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: reg
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.borrow().clone()))
                .collect(),
            profiles: reg
                .profiles
                .iter()
                .map(|(k, s)| (k.clone(), *s.borrow()))
                .collect(),
            events: reg.journal.events().cloned().collect(),
            journal_evicted: reg.journal.evicted(),
        }
    }

    /// Merge a snapshot into this registry: counters, histogram buckets,
    /// and profile aggregates add; gauges keep the maximum (in a sharded
    /// run each gauge has one true writer — the shard owning the node it
    /// describes — while every other shard leaves the registered default
    /// of zero); journal events append through the bounded ring, with
    /// evictions surfaced exactly like [`Telemetry::event`] does.
    ///
    /// Absorbing the per-shard snapshots in shard order reproduces the
    /// sequential registry byte-for-byte in [`Telemetry::export_jsonl`],
    /// *provided no journal ring evicted* — per-shard rings bound memory
    /// per shard, so under eviction the retained-event sets can differ
    /// from a sequential run's (the `meta` line's `journal_evicted` makes
    /// that visible).
    pub fn absorb(&self, snap: TelemetrySnapshot) {
        let Some(reg) = &self.inner else {
            return;
        };
        let mut reg = reg.borrow_mut();
        for (key, v) in snap.counters {
            let cell = reg.counters.entry(key).or_default();
            cell.set(cell.get().wrapping_add(v));
        }
        for (key, v) in snap.gauges {
            let cell = reg.gauges.entry(key).or_default();
            cell.set(cell.get().max(v));
        }
        for (key, h) in snap.histograms {
            reg.histograms
                .entry(key)
                .or_default()
                .borrow_mut()
                .merge(&h);
        }
        for (name, s) in snap.profiles {
            reg.profiles.entry(name).or_default().borrow_mut().merge(&s);
        }
        reg.journal.absorb_evicted(snap.journal_evicted);
        for event in snap.events {
            if reg.journal.push(event) {
                let cell = reg
                    .counters
                    .entry(metric_key("telemetry_journal_dropped", &[]))
                    .or_default();
                cell.set(cell.get() + 1);
            }
        }
    }

    /// Serialise everything collected so far as JSON lines.
    ///
    /// The first line is a `meta` record carrying the schema version and the
    /// journal eviction count; then one line per counter, gauge, and
    /// histogram (in deterministic name/label order), one `profile` line per
    /// profiled site, then retained journal events in canonical
    /// `(time, serialised bytes)` order — a total order over event
    /// *content*, so a registry merged from per-shard snapshots exports
    /// the same journal section as the sequential run that recorded the
    /// same events in one ring. Returns an empty string when disabled.
    pub fn export_jsonl(&self) -> String {
        let Some(reg) = &self.inner else {
            return String::new();
        };
        let reg = reg.borrow();
        let mut out = String::new();
        let meta = Value::object()
            .set("type", "meta")
            .set("schema", SCHEMA_VERSION)
            .set("journal_evicted", reg.journal.evicted())
            .set("journal_capacity", reg.journal.capacity() as u64);
        out.push_str(&meta.to_compact());
        out.push('\n');
        for ((name, labels), cell) in &reg.counters {
            let line = Value::object()
                .set("type", "counter")
                .set("name", name.as_str())
                .set("labels", labels_json(labels))
                .set("value", cell.get());
            out.push_str(&line.to_compact());
            out.push('\n');
        }
        for ((name, labels), cell) in &reg.gauges {
            let line = Value::object()
                .set("type", "gauge")
                .set("name", name.as_str())
                .set("labels", labels_json(labels))
                .set("value", cell.get());
            out.push_str(&line.to_compact());
            out.push('\n');
        }
        for ((name, labels), hist) in &reg.histograms {
            let h = hist.borrow();
            let buckets: Vec<Value> = h
                .buckets()
                .iter()
                .map(|b| {
                    Value::from(vec![
                        Value::from(b.lo),
                        Value::from(b.hi),
                        Value::from(b.count),
                    ])
                })
                .collect();
            let line = Value::object()
                .set("type", "histogram")
                .set("name", name.as_str())
                .set("labels", labels_json(labels))
                .set("count", h.count())
                .set("min", h.min())
                .set("max", h.max())
                .set("mean", h.mean())
                .set("p50", h.quantile(0.50))
                .set("p90", h.quantile(0.90))
                .set("p99", h.quantile(0.99))
                .set("buckets", Value::from(buckets));
            out.push_str(&line.to_compact());
            out.push('\n');
        }
        for (name, stat) in &reg.profiles {
            let s = stat.borrow();
            let line = Value::object()
                .set("type", "profile")
                .set("name", name.as_str())
                .set("count", s.count)
                .set("total_ns", s.total_ns)
                .set("min_ns", s.min_ns)
                .set("max_ns", s.max_ns)
                .set("mean_ns", s.mean_ns());
            out.push_str(&line.to_compact());
            out.push('\n');
        }
        let mut events: Vec<(Nanos, String)> = reg
            .journal
            .events()
            .map(|e| (e.t, e.to_json().to_compact()))
            .collect();
        events.sort();
        for (_, line) in events {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Human-readable multi-line summary of everything collected so far.
    pub fn summary(&self) -> String {
        match &self.inner {
            Some(_) => crate::report::render(&self.export_jsonl())
                .unwrap_or_else(|e| format!("telemetry summary unavailable: {e}")),
            None => "telemetry disabled".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let c = t.counter("pkts", &[]);
        c.inc();
        assert_eq!(c.get(), 0);
        let g = t.gauge("depth", &[]);
        g.set(5);
        assert_eq!(g.get(), 0);
        let h = t.histogram("lat", &[]);
        h.record(9);
        assert_eq!(h.count(), 0);
        t.event(Nanos(1), "tick", &[]);
        assert_eq!(t.export_jsonl(), "");
    }

    #[test]
    fn reregistering_shares_the_cell() {
        let t = Telemetry::enabled();
        let a = t.counter("pkts", &[("tenant", "0")]);
        let b = t.counter("pkts", &[("tenant", "0")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Label order must not matter.
        let c = t.counter("x", &[("a", "1"), ("b", "2")]);
        let d = t.counter("x", &[("b", "2"), ("a", "1")]);
        c.inc();
        assert_eq!(d.get(), 1);
    }

    #[test]
    fn clones_share_one_registry() {
        let t = Telemetry::enabled();
        let t2 = t.clone();
        t.counter("pkts", &[]).inc();
        assert_eq!(t2.counter("pkts", &[]).get(), 1);
    }

    #[test]
    fn export_is_deterministic_jsonl() {
        let t = Telemetry::enabled();
        t.counter("drops", &[("queue", "q1")]).add(2);
        t.gauge("depth", &[]).set(-3);
        t.histogram("lat", &[]).record(100);
        t.event(Nanos(7), "recompile", &[("version", Value::from(2u64))]);
        let out = t.export_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with(r#"{"type":"meta","schema":1"#));
        assert_eq!(
            lines[1],
            r#"{"type":"counter","name":"drops","labels":{"queue":"q1"},"value":2}"#
        );
        assert_eq!(
            lines[2],
            r#"{"type":"gauge","name":"depth","labels":{},"value":-3}"#
        );
        assert!(lines[3].starts_with(r#"{"type":"histogram","name":"lat""#));
        assert!(lines[4].starts_with(r#"{"type":"event","t_ns":7,"kind":"recompile""#));
        // Every line must be valid JSON.
        for line in lines {
            qvisor_sim::json::Value::parse(line).expect("valid JSON line");
        }
        // Exporting twice yields byte-identical output.
        assert_eq!(out, t.export_jsonl());
    }

    #[test]
    fn journal_eviction_bumps_dropped_counter() {
        let t = Telemetry::with_journal_capacity(2);
        for i in 0..5u64 {
            t.event(Nanos(i), "tick", &[]);
        }
        assert_eq!(t.counter("telemetry_journal_dropped", &[]).get(), 3);
        let out = t.export_jsonl();
        assert!(
            out.contains(
                r#"{"type":"counter","name":"telemetry_journal_dropped","labels":{},"value":3}"#
            ),
            "{out}"
        );
        // Within capacity, the counter never materialises.
        let roomy = Telemetry::enabled();
        roomy.event(Nanos(1), "tick", &[]);
        assert!(!roomy.export_jsonl().contains("telemetry_journal_dropped"));
    }

    /// The shard-count-invariance contract in miniature: two registries
    /// splitting the recording work, absorbed in order, must export the
    /// same bytes as one registry that saw everything.
    #[test]
    fn absorbed_snapshots_export_like_one_registry() {
        let record = |t: &Telemetry, half: u64| {
            // Disjoint work per half for counters/histograms/journal; the
            // gauge has a single writer (half 0), as sharded gauges do.
            t.counter("pkts", &[("tenant", "0")]).add(10 + half);
            if half == 0 {
                t.gauge("depth", &[]).set(7);
                t.event(Nanos(5), "alpha", &[("x", Value::from(1u64))]);
            } else {
                t.gauge("depth", &[]); // registered, default 0
                t.event(Nanos(2), "beta", &[]);
                t.event(Nanos(5), "alpha", &[("x", Value::from(9u64))]);
            }
            t.histogram("lat", &[]).record(100 * (half + 1));
        };
        let whole = Telemetry::enabled();
        record(&whole, 0);
        record(&whole, 1);

        let sink = Telemetry::enabled();
        for half in 0..2 {
            let part = Telemetry::enabled();
            record(&part, half);
            sink.absorb(part.snapshot());
        }
        assert_eq!(sink.export_jsonl(), whole.export_jsonl());
        assert_eq!(sink.counter("pkts", &[("tenant", "0")]).get(), 21);
        assert_eq!(sink.gauge("depth", &[]).get(), 7);
        assert_eq!(sink.histogram("lat", &[]).count(), 2);
    }

    #[test]
    fn absorb_carries_eviction_counts_through_the_ring() {
        let part = Telemetry::with_journal_capacity(1);
        part.event(Nanos(1), "a", &[]);
        part.event(Nanos(2), "b", &[]); // evicts "a"
        let sink = Telemetry::with_journal_capacity(1);
        sink.event(Nanos(0), "pre", &[]);
        sink.absorb(part.snapshot());
        let out = sink.export_jsonl();
        // One eviction inside the shard, one more absorbing "b" over "pre".
        assert!(out.contains(r#""journal_evicted":2"#), "{out}");
        assert!(out.contains(r#""kind":"b""#), "{out}");
        // Disabled sinks and sources are inert.
        let disabled = Telemetry::disabled();
        disabled.absorb(part.snapshot());
        assert_eq!(disabled.export_jsonl(), "");
        assert!(Telemetry::disabled().snapshot().counters.is_empty());
    }

    #[test]
    fn histogram_quantiles_via_handle() {
        let t = Telemetry::enabled();
        let h = t.histogram("lat", &[]);
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((480..=520).contains(&p50), "p50 was {p50}");
    }
}
