//! The daemon shell: TCP listener, per-connection sessions, and the
//! control thread.
//!
//! Threading model (documented in DESIGN.md):
//!
//! - one **accept thread** turns connections into session threads;
//! - each **session thread** reads request lines. *Reads* (`get-chain`,
//!   `status`, `snapshot`) are answered directly from the shared
//!   [`SnapshotCell`] — a pointer clone, never blocked by resynthesis.
//!   *Mutations* (`submit-policy`, `withdraw-tenant`, `get-log`,
//!   `shutdown`) are forwarded over a channel to the control thread and
//!   the session blocks only for its own reply;
//! - one **control thread** owns the [`ControlPlane`] (telemetry registries
//!   are `Rc`-based, so the control plane never crosses threads) and
//!   serializes all mutations — which is what makes the accepted-mutation
//!   log a faithful sequential history of the daemon's state.
//!
//! Shutdown: the control thread flips the stop flag, wakes the accept
//! loop with a loopback connect, closes every registered connection, and
//! publishes a terminal line to telemetry subscribers so streaming
//! sessions unblock. `Daemon::wait` then joins every thread.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use qvisor_core::config_api::{DeploymentConfig, TenantConfig};
use qvisor_sim::json::Value;
use qvisor_telemetry::SnapshotBus;

use crate::control::ControlPlane;
use crate::protocol::{error_response, Request};
use crate::registry::SnapshotCell;
use crate::stats::ServeStats;

/// Stream line announcing the end of a telemetry subscription.
pub const STREAM_END: &str = r#"{"type":"stream_end"}"#;

/// Daemon options.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:4733` (port 0 picks an ephemeral
    /// port; read it back from [`Daemon::local_addr`]).
    pub listen: String,
    /// Treat verifier warnings as admission failures.
    pub deny_warnings: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            listen: "127.0.0.1:4733".to_string(),
            deny_warnings: false,
        }
    }
}

/// A mutation forwarded to the control thread.
enum Command {
    Submit(TenantConfig, Sender<Value>),
    Withdraw(String, Sender<Value>),
    GetLog(Sender<Value>),
    Status(Sender<Value>),
    Metrics(Sender<Value>),
    Shutdown(Sender<Value>),
}

struct Shared {
    cell: Arc<SnapshotCell>,
    bus: Arc<SnapshotBus>,
    stats: ServeStats,
    stop: AtomicBool,
    conns: Mutex<BTreeMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

impl Shared {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let clone = stream.try_clone().ok()?;
        self.conns
            .lock()
            .expect("conn table poisoned")
            .insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.conns.lock().expect("conn table poisoned").remove(&id);
    }

    fn close_all(&self) {
        let conns = self.conns.lock().expect("conn table poisoned");
        for stream in conns.values() {
            // Read half only: unblocks sessions parked in `read_line`
            // (they see EOF and exit) without cutting off a response
            // still being written — e.g. the shutdown requester's ack,
            // which its session thread may flush concurrently with this
            // teardown.
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

/// A running daemon; dropping it does *not* stop it — call
/// [`Daemon::wait`] (blocks until a `shutdown` request) or
/// [`Daemon::shutdown`].
pub struct Daemon {
    local_addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    control_tx: Sender<Command>,
    control: Option<JoinHandle<String>>,
    accept: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Daemon {
    /// Bind, spawn the control and accept threads, and return. Fails fast
    /// when the address cannot be bound or the config is invalid.
    pub fn start(config: DeploymentConfig, opts: ServeOptions) -> Result<Daemon, String> {
        let listener = TcpListener::bind(&opts.listen)
            .map_err(|e| format!("cannot listen on {}: {e}", opts.listen))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("listener has no local address: {e}"))?;
        let shared = Arc::new(Shared {
            cell: Arc::new(SnapshotCell::default()),
            bus: Arc::new(SnapshotBus::new()),
            stats: ServeStats::default(),
            stop: AtomicBool::new(false),
            conns: Mutex::new(BTreeMap::new()),
            next_conn: AtomicU64::new(0),
        });

        let (control_tx, control_rx) = channel::<Command>();
        let (init_tx, init_rx) = channel::<Result<(), String>>();
        let control = {
            let shared = Arc::clone(&shared);
            let deny_warnings = opts.deny_warnings;
            // determinism: allowed (control-plane I/O thread, never feeds simulation state)
            std::thread::spawn(move || {
                // The control plane (Rc-based telemetry) lives and dies on
                // this thread.
                let mut plane =
                    match ControlPlane::new(&config, deny_warnings, Arc::clone(&shared.cell)) {
                        Ok(plane) => {
                            let _ = init_tx.send(Ok(()));
                            plane
                        }
                        Err(e) => {
                            let _ = init_tx.send(Err(e));
                            return String::new();
                        }
                    };
                while let Ok(cmd) = control_rx.recv() {
                    match cmd {
                        Command::Submit(tenant, reply) => {
                            // Commit latency is a daemon health metric,
                            // never simulation state.
                            let started = std::time::Instant::now(); // determinism: allowed (daemon health metric)
                            let response = plane.submit(tenant);
                            let committed =
                                response.get("ok").and_then(Value::as_bool) == Some(true);
                            shared.stats.record_admission(&response);
                            if committed {
                                shared
                                    .stats
                                    .record_commit_latency_ns(duration_ns(started.elapsed()));
                            }
                            let _ = reply.send(response);
                            if committed && !shared.bus.is_empty() {
                                shared.bus.publish(&plane.telemetry_line());
                            }
                        }
                        Command::Withdraw(name, reply) => {
                            // Commit latency is a daemon health metric,
                            // never simulation state.
                            let started = std::time::Instant::now(); // determinism: allowed (daemon health metric)
                            let response = plane.withdraw(&name);
                            let committed =
                                response.get("ok").and_then(Value::as_bool) == Some(true);
                            if committed {
                                shared
                                    .stats
                                    .record_commit_latency_ns(duration_ns(started.elapsed()));
                            }
                            let _ = reply.send(response);
                            if committed && !shared.bus.is_empty() {
                                shared.bus.publish(&plane.telemetry_line());
                            }
                        }
                        Command::GetLog(reply) => {
                            let _ = reply.send(plane.log_value());
                        }
                        Command::Status(reply) => {
                            let status = shared
                                .stats
                                .status_fields(plane.status_value())
                                .set("bus_lines_dropped", shared.bus.dropped_lines());
                            let _ = reply.send(status);
                        }
                        Command::Metrics(reply) => {
                            let combined = format!(
                                "{}{}",
                                plane.telemetry_export(),
                                shared.stats.export_jsonl()
                            );
                            let response = match qvisor_telemetry::prometheus::render(&combined) {
                                Ok(body) => Value::object()
                                    .set("ok", true)
                                    .set("result", "metrics")
                                    .set("content_type", "text/plain; version=0.0.4")
                                    .set("body", body),
                                Err(e) => error_response(&format!("metrics render failed: {e}")),
                            };
                            let _ = reply.send(response);
                        }
                        Command::Shutdown(reply) => {
                            shared.stop.store(true, Ordering::SeqCst);
                            // Wake the accept loop so it observes the flag;
                            // idle connections are closed by `wait` (closing
                            // them here would race the requester's ack).
                            let _ = TcpStream::connect(local_addr);
                            shared.bus.publish(STREAM_END);
                            let ack = plane.shutdown_value();
                            let summary = format!(
                                "serve: shut down at version {} ({} accepted, {} rejected)\n",
                                plane.snapshot().version,
                                plane.snapshot().accepted,
                                plane.rejected_count()
                            );
                            let _ = reply.send(ack);
                            return summary;
                        }
                    }
                }
                String::new()
            })
        };
        init_rx
            .recv()
            .map_err(|_| "control thread died during startup".to_string())??;

        let sessions = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let control_tx = control_tx.clone();
            let sessions = Arc::clone(&sessions);
            // determinism: allowed (TCP accept loop, never feeds simulation state)
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    let control_tx = control_tx.clone();
                    // determinism: allowed (per-client session I/O, never feeds simulation state)
                    let handle = std::thread::spawn(move || {
                        session(stream, &shared, &control_tx);
                    });
                    sessions
                        .lock()
                        .expect("session table poisoned")
                        .push(handle);
                }
            })
        };

        Ok(Daemon {
            local_addr,
            shared,
            control_tx,
            control: Some(control),
            accept: Some(accept),
            sessions,
        })
    }

    /// The bound address (useful with `--listen 127.0.0.1:0`).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Block until a `shutdown` request stops the daemon; returns the
    /// run summary.
    pub fn wait(mut self) -> String {
        let summary = match self.control.take() {
            Some(handle) => handle.join().unwrap_or_default(),
            None => String::new(),
        };
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Unblock sessions still parked in `read_line` on idle
        // connections, then reap every session thread.
        self.shared.close_all();
        let handles: Vec<JoinHandle<()>> = {
            let mut sessions = self.sessions.lock().expect("session table poisoned");
            sessions.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
        summary
    }

    /// Programmatic clean stop (equivalent to a client `shutdown`
    /// request); returns the run summary.
    pub fn shutdown(self) -> String {
        let (tx, rx) = channel();
        if self.control_tx.send(Command::Shutdown(tx)).is_ok() {
            let _ = rx.recv();
        }
        self.wait()
    }
}

/// Serve one connection until EOF, protocol error on write, or shutdown.
fn session(stream: TcpStream, shared: &Shared, control_tx: &Sender<Command>) {
    let conn_id = shared.register(&stream);
    let mut reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(line.trim()) {
            Ok(request) => request,
            Err(e) => {
                shared.stats.record_op("invalid");
                if write_line(&mut writer, &error_response(&e)).is_err() {
                    break;
                }
                continue;
            }
        };
        shared.stats.record_op(request.op_name());
        let shutting_down = matches!(request, Request::Shutdown);
        let response = match request {
            // Reads: answered from the published snapshot, never queued
            // behind a resynthesis.
            Request::GetChain(tenant) => get_chain(shared, tenant.as_deref()),
            Request::Snapshot => {
                let snap = shared.cell.load();
                let body = snap.to_value();
                Value::object()
                    .set("ok", true)
                    .set("result", "snapshot")
                    .set("snapshot", body)
            }
            // Mutations and log reads: serialized through the control
            // thread.
            Request::SubmitPolicy(t) => roundtrip(control_tx, |tx| Command::Submit(t, tx)),
            Request::WithdrawTenant(name) => {
                roundtrip(control_tx, |tx| Command::Withdraw(name, tx))
            }
            Request::GetLog => roundtrip(control_tx, Command::GetLog),
            Request::Status => roundtrip(control_tx, Command::Status),
            Request::Metrics => roundtrip(control_tx, Command::Metrics),
            Request::Shutdown => roundtrip(control_tx, Command::Shutdown),
            Request::SubscribeTelemetry => {
                let rx = shared.bus.subscribe();
                let ack = Value::object().set("ok", true).set("result", "subscribed");
                if write_line(&mut writer, &ack).is_err() {
                    break;
                }
                // The connection is now a stream; forward until the bus
                // announces shutdown or the client hangs up.
                while let Ok(published) = rx.recv() {
                    let done = published == STREAM_END;
                    if writeln!(writer, "{published}").is_err() || done {
                        break;
                    }
                }
                break;
            }
        };
        if write_line(&mut writer, &response).is_err() || shutting_down {
            break;
        }
    }
    if let Some(id) = conn_id {
        shared.deregister(id);
    }
}

fn write_line(writer: &mut TcpStream, value: &Value) -> std::io::Result<()> {
    writeln!(writer, "{}", value.to_compact())
}

fn duration_ns(elapsed: std::time::Duration) -> u64 {
    u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
}

/// Send a command to the control thread and wait for this request's reply.
fn roundtrip(control_tx: &Sender<Command>, make: impl FnOnce(Sender<Value>) -> Command) -> Value {
    let (tx, rx) = channel();
    if control_tx.send(make(tx)).is_err() {
        return error_response("daemon is shutting down");
    }
    rx.recv()
        .unwrap_or_else(|_| error_response("daemon is shutting down"))
}

fn get_chain(shared: &Shared, tenant: Option<&str>) -> Value {
    let snap = shared.cell.load();
    let base = Value::object()
        .set("ok", true)
        .set("result", "chain")
        .set("version", snap.version)
        .set("fingerprint", snap.fingerprint.as_str());
    match tenant {
        None => {
            let chains: Vec<Value> = snap
                .to_value()
                .get("chains")
                .and_then(|c| c.as_array().map(<[Value]>::to_vec))
                .unwrap_or_default();
            base.set("chains", Value::from(chains))
        }
        Some(name) => match snap.chains.iter().position(|c| c.name == name) {
            None => error_response(&format!("tenant '{name}' has no published chain")),
            Some(i) => {
                let chain = snap
                    .to_value()
                    .get("chains")
                    .and_then(Value::as_array)
                    .map(|c| c[i].clone())
                    .unwrap_or_else(Value::object);
                base.set("chain", chain)
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> DeploymentConfig {
        DeploymentConfig::from_json(
            r#"{
                "tenants": [
                    {"id": 1, "name": "gold", "algorithm": "pFabric", "rank_min": 0, "rank_max": 999, "levels": 16},
                    {"id": 2, "name": "silver", "algorithm": "EDF", "rank_min": 0, "rank_max": 499}
                ],
                "policy": "gold >> silver",
                "synth": {"first_rank": 1}
            }"#,
        )
        .unwrap()
    }

    fn start() -> Daemon {
        Daemon::start(
            universe(),
            ServeOptions {
                listen: "127.0.0.1:0".to_string(),
                deny_warnings: false,
            },
        )
        .unwrap()
    }

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(daemon: &Daemon) -> Client {
            let stream = TcpStream::connect(daemon.local_addr()).unwrap();
            Client {
                reader: BufReader::new(stream.try_clone().unwrap()),
                writer: stream,
            }
        }

        fn send(&mut self, line: &str) -> Value {
            writeln!(self.writer, "{line}").unwrap();
            self.read()
        }

        fn read(&mut self) -> Value {
            let mut response = String::new();
            self.reader.read_line(&mut response).unwrap();
            Value::parse(response.trim()).unwrap()
        }
    }

    #[test]
    fn daemon_round_trips_the_protocol() {
        let daemon = start();
        let mut client = Client::connect(&daemon);

        let r = client.send(r#"{"op":"status"}"#);
        assert_eq!(r.get("version").and_then(Value::as_u64), Some(1));

        let r = client.send(
            r#"{"op":"submit-policy","tenant":{"id":1,"name":"gold","algorithm":"pFabric","rank_min":0,"rank_max":999,"levels":16}}"#,
        );
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true), "{r:?}");
        assert_eq!(r.get("version").and_then(Value::as_u64), Some(2));

        let r = client.send(r#"{"op":"get-chain","tenant":"gold"}"#);
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(r.get("version").and_then(Value::as_u64), Some(2));

        let r = client.send(r#"{"op":"nonsense"}"#);
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(false));
        // The connection survives protocol errors.
        let r = client.send(r#"{"op":"snapshot"}"#);
        let canonical = r.get("snapshot").unwrap().to_compact();
        crate::registry::ChainSnapshot::verify_canonical(&canonical).unwrap();

        let r = client.send(r#"{"op":"shutdown"}"#);
        assert_eq!(r.get("result").and_then(Value::as_str), Some("shutdown"));
        let summary = daemon.wait();
        assert!(summary.contains("shut down"), "{summary}");
    }

    #[test]
    fn telemetry_subscription_streams_until_shutdown() {
        let daemon = start();
        let mut subscriber = Client::connect(&daemon);
        let ack = subscriber.send(r#"{"op":"subscribe-telemetry"}"#);
        assert_eq!(
            ack.get("result").and_then(Value::as_str),
            Some("subscribed")
        );

        let mut client = Client::connect(&daemon);
        let r = client.send(
            r#"{"op":"submit-policy","tenant":{"id":2,"name":"silver","algorithm":"EDF","rank_min":0,"rank_max":499}}"#,
        );
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));

        let snap = subscriber.read();
        assert_eq!(
            snap.get("type").and_then(Value::as_str),
            Some("telemetry_snapshot")
        );
        assert_eq!(snap.get("version").and_then(Value::as_u64), Some(2));

        client.send(r#"{"op":"shutdown"}"#);
        let end = subscriber.read();
        assert_eq!(end.get("type").and_then(Value::as_str), Some("stream_end"));
        daemon.wait();
    }

    #[test]
    fn metrics_and_status_reflect_a_scripted_session() {
        let daemon = start();
        let mut client = Client::connect(&daemon);

        // One accept, one structural reject, one gate reject.
        let r = client.send(
            r#"{"op":"submit-policy","tenant":{"id":1,"name":"gold","algorithm":"pFabric","rank_min":0,"rank_max":999,"levels":16}}"#,
        );
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
        let r = client.send(
            r#"{"op":"submit-policy","tenant":{"id":9,"name":"ghost","algorithm":"x","rank_min":0,"rank_max":9}}"#,
        );
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(false));
        let r = client.send(
            r#"{"op":"submit-policy","tenant":{"id":2,"name":"silver","algorithm":"EDF","rank_min":0,"rank_max":18446744073709551615,"levels":18446744073709551615}}"#,
        );
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(false));
        client.send("not json at all");

        let status = client.send(r#"{"op":"status"}"#);
        let requests = status.get("requests").unwrap();
        assert_eq!(
            requests.get("submit-policy").and_then(Value::as_u64),
            Some(3)
        );
        assert_eq!(requests.get("invalid").and_then(Value::as_u64), Some(1));
        let admission = status.get("admission").unwrap();
        assert_eq!(admission.get("accepted").and_then(Value::as_u64), Some(1));
        assert_eq!(admission.get("rejected").and_then(Value::as_u64), Some(2));
        let by_code = admission.get("rejected_by_code").unwrap();
        assert_eq!(
            by_code
                .get(crate::stats::STRUCTURAL_CODE)
                .and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            status.get("bus_lines_dropped").and_then(Value::as_u64),
            Some(0)
        );

        let r = client.send(r#"{"op":"metrics"}"#);
        assert_eq!(r.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(
            r.get("content_type").and_then(Value::as_str),
            Some("text/plain; version=0.0.4")
        );
        let body = r.get("body").and_then(Value::as_str).unwrap();
        assert!(
            body.contains(r#"qvisor_serve_requests{op="submit-policy"} 3"#),
            "{body}"
        );
        assert!(body.contains("qvisor_serve_admission_accepted 1"), "{body}");
        assert!(
            body.contains("qvisor_serve_commit_latency_ns_count 1"),
            "{body}"
        );

        client.send(r#"{"op":"shutdown"}"#);
        daemon.wait();
    }

    #[test]
    fn programmatic_shutdown_unblocks_everything() {
        let daemon = start();
        let _idle = Client::connect(&daemon);
        let summary = daemon.shutdown();
        assert!(summary.contains("shut down"), "{summary}");
    }
}
