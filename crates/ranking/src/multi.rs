//! Multi-objective rank functions (§5 "multi-objective scheduling
//! algorithms").
//!
//! The paper asks whether multiple objectives can be achieved *on the same
//! traffic*. [`MultiObjective`] composes existing rank functions into one:
//! each component's rank is normalized onto a common scale and the results
//! are combined by weighted sum — e.g. 70 % SRPT + 30 % slack gives a
//! policy that chases FCTs while resisting deadline misses.

use crate::ctx::RankCtx;
use crate::range::RankRange;
use crate::RankFn;
use qvisor_sim::Rank;

/// A weighted combination of rank functions.
///
/// Each component rank is first normalized from its declared range onto
/// `[0, resolution]`, then summed with its weight; the output range is
/// `[0, resolution * total_weight]`.
pub struct MultiObjective {
    components: Vec<(Box<dyn RankFn>, u32)>,
    resolution: u64,
    total_weight: u64,
}

impl MultiObjective {
    /// Combine `components` (each with a positive weight) at the given
    /// normalization `resolution` (distinct values per component).
    ///
    /// # Panics
    /// Panics if there are no components, any weight is zero, or
    /// `resolution` is zero.
    pub fn new(components: Vec<(Box<dyn RankFn>, u32)>, resolution: u64) -> MultiObjective {
        assert!(!components.is_empty(), "need at least one component");
        assert!(resolution > 0, "resolution must be positive");
        assert!(
            components.iter().all(|&(_, w)| w > 0),
            "weights must be positive"
        );
        let total_weight = components.iter().map(|&(_, w)| w as u64).sum();
        MultiObjective {
            components,
            resolution,
            total_weight,
        }
    }
}

impl RankFn for MultiObjective {
    fn rank(&mut self, ctx: &RankCtx) -> Rank {
        let resolution = self.resolution;
        let mut sum = 0u64;
        for (f, w) in &mut self.components {
            let range = f.range();
            let raw = range.clamp(f.rank(ctx));
            let span = range.max - range.min;
            let normalized = if span == 0 {
                0
            } else {
                ((raw - range.min) as u128 * resolution as u128 / span as u128) as u64
            };
            sum += normalized * *w as u64;
        }
        sum
    }

    fn range(&self) -> RankRange {
        RankRange::new(0, self.resolution * self.total_weight)
    }

    fn name(&self) -> &'static str {
        "multi-objective"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::funcs::{Edf, PFabric};
    use qvisor_sim::{FlowId, Nanos};

    fn ctx(flow_size: u64, sent: u64, deadline_us: Option<u64>) -> RankCtx {
        let mut c = RankCtx::simple(Nanos::ZERO, FlowId(1), flow_size, sent);
        c.deadline = deadline_us.map(Nanos::from_micros);
        c
    }

    fn srpt_edf(w_srpt: u32, w_edf: u32) -> MultiObjective {
        MultiObjective::new(
            vec![
                (Box::new(PFabric::new(1_000, 1_000)), w_srpt),
                (Box::new(Edf::new(Nanos::from_micros(1), 1_000)), w_edf),
            ],
            1_000,
        )
    }

    #[test]
    fn output_stays_in_declared_range() {
        let mut m = srpt_edf(7, 3);
        let range = m.range();
        assert_eq!(range, RankRange::new(0, 10_000));
        for size in [0u64, 1_000, 100_000, 10_000_000] {
            for dl in [None, Some(1u64), Some(500), Some(10_000_000)] {
                let r = m.rank(&ctx(size, 0, dl));
                assert!(range.contains(r), "{r} outside {range}");
            }
        }
    }

    #[test]
    fn combination_biases_toward_heavier_objective() {
        // Flow A: tiny remaining (great SRPT), distant deadline (bad EDF).
        // Flow B: huge remaining (bad SRPT), imminent deadline (great EDF).
        let a = ctx(1_000, 0, Some(1_000_000));
        let b = ctx(1_000_000, 0, Some(1));

        let mut srpt_heavy = srpt_edf(9, 1);
        assert!(
            srpt_heavy.rank(&a) < srpt_heavy.rank(&b),
            "SRPT-heavy mix must favour the short flow"
        );
        let mut edf_heavy = srpt_edf(1, 9);
        assert!(
            edf_heavy.rank(&b) < edf_heavy.rank(&a),
            "EDF-heavy mix must favour the urgent flow"
        );
    }

    #[test]
    fn single_component_degenerates_to_normalized_original() {
        let mut m = MultiObjective::new(vec![(Box::new(PFabric::new(1_000, 100)), 1)], 100);
        // 50 KB remaining of a 100 KB-max function: normalized to 50/100.
        assert_eq!(m.rank(&ctx(50_000, 0, None)), 50);
        assert_eq!(m.range(), RankRange::new(0, 100));
    }

    #[test]
    fn monotone_in_each_objective() {
        let mut m = srpt_edf(1, 1);
        // Holding the deadline fixed, more remaining bytes can't rank better.
        let mut prev = 0;
        for size in (0..10).map(|i| i * 100_000) {
            let r = m.rank(&ctx(size, 0, Some(500)));
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_rejected() {
        let _ = MultiObjective::new(vec![(Box::new(PFabric::new(1, 1)), 0)], 10);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_components_rejected() {
        let _ = MultiObjective::new(vec![], 10);
    }
}
