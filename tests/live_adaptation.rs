//! Live runtime adaptation inside the network simulator (§5 "optimizing
//! configurations at runtime"): the event-driven controller runs on a
//! timer, notices that a tenant's observed ranks use only a sliver of its
//! declared range, tightens the range, re-synthesizes, and hot-reloads
//! the pre-processor mid-simulation — restoring quantization granularity
//! (and with it, intra-tenant SRPT) without operator involvement.

use qvisor::core::{MonitorConfig, SynthConfig, TenantSpec, UnknownTenantAction, ViolationAction};
use qvisor::netsim::{NewFlow, QvisorSetup, SchedulerKind, SimConfig, SimReport, Simulation};
use qvisor::ranking::{PFabric, RankRange};
use qvisor::sim::{gbps, Nanos, TenantId};
use qvisor::topology::Dumbbell;
use qvisor::transport::SizeBucket;

const T1: TenantId = TenantId(1);

/// One tenant whose spec declares ranks up to 1,000,000 but whose traffic
/// only reaches ~5,000: with 32 quantization levels the whole workload
/// collapses into level 0 (mice can't preempt the elephant) until the
/// adapter tightens the range.
fn run(adaptation: Option<Nanos>) -> SimReport {
    let d = Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(1));
    let specs =
        vec![TenantSpec::new(T1, "T1", "pFabric", RankRange::new(0, 1_000_000)).with_levels(32)];
    let cfg = SimConfig {
        seed: 13,
        horizon: Nanos::from_millis(400),
        scheduler: SchedulerKind::Pifo,
        adaptation_interval: adaptation,
        qvisor: Some(QvisorSetup {
            specs,
            policy: "T1".into(),
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope: Default::default(),
            monitor: Some(MonitorConfig {
                violation_action: ViolationAction::Clamp,
                idle_after: Nanos::from_millis(50),
                drift_ratio: 4.0,
            }),
        }),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(T1, Box::new(PFabric::new(1_000, 1_000_000)));
    // One 5 MB elephant (raw ranks up to 5000)...
    sim.add_flow(NewFlow::new(
        T1,
        d.senders[0],
        d.receivers[0],
        5_000_000,
        Nanos::ZERO,
    ));
    // ...and mice arriving after the first control ticks have had a chance
    // to observe the real distribution.
    for i in 0..15u64 {
        sim.add_flow(NewFlow::new(
            T1,
            d.senders[1],
            d.receivers[0],
            20_000,
            Nanos::from_millis(12 + 2 * i),
        ));
    }
    sim.run()
}

#[test]
fn drift_tightening_restores_srpt_mid_run() {
    let frozen = run(None);
    let adapted = run(Some(Nanos::from_millis(3)));

    assert_eq!(frozen.reconfigurations, 0);
    assert!(
        adapted.reconfigurations >= 1,
        "the controller must have re-synthesized at least once"
    );

    let mice = |r: &SimReport| r.fct.mean_fct_ms(Some(T1), SizeBucket::SMALL).unwrap();
    let (f, a) = (mice(&frozen), mice(&adapted));
    assert!(
        a * 2.0 < f,
        "tightened quantization must revive mouse preemption: \
         frozen {f:.3} ms vs adapted {a:.3} ms"
    );
    // Both runs complete everything.
    assert_eq!(frozen.incomplete_flows, 0);
    assert_eq!(adapted.incomplete_flows, 0);
}

#[test]
fn adaptation_does_not_repropose_every_tick() {
    // The tightened range persists in the adapter: reconfigurations stay
    // bounded (one for the tightening; possibly one more if the observed
    // bound shifts as the elephant drains), not one per 3 ms tick over a
    // 400 ms run.
    let adapted = run(Some(Nanos::from_millis(3)));
    assert!(
        adapted.reconfigurations <= 4,
        "got {} reconfigurations — tightening must not re-propose forever",
        adapted.reconfigurations
    );
}

#[test]
fn adaptation_requires_monitor_and_qvisor() {
    let d = Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(1));
    // No qvisor at all.
    let cfg = SimConfig {
        adaptation_interval: Some(Nanos::from_millis(1)),
        ..SimConfig::default()
    };
    assert!(Simulation::new(d.topology.clone(), cfg).is_err());
    // QVISOR without a monitor.
    let cfg = SimConfig {
        adaptation_interval: Some(Nanos::from_millis(1)),
        qvisor: Some(QvisorSetup::new(
            vec![TenantSpec::new(T1, "T1", "pFabric", RankRange::new(0, 10))],
            "T1",
        )),
        ..SimConfig::default()
    };
    assert!(Simulation::new(d.topology.clone(), cfg).is_err());
}
