#![deny(missing_docs)]

//! # qvisor-telemetry — unified observability for the QVISOR reproduction
//!
//! One metrics path for the whole workspace: scheduler backends, the
//! packet-level network simulator, and the hypervisor runtime all report
//! through a [`Telemetry`] handle instead of growing ad-hoc counter structs.
//!
//! Three ideas keep it cheap and safe to leave plumbed in everywhere:
//!
//! 1. **Zero-cost when compiled out.** With the `enabled` cargo feature off
//!    (it is on by default), every handle is a zero-sized type and every
//!    recording method is an empty `#[inline]` body, so the optimiser erases
//!    the instrumentation entirely.
//! 2. **Cheap when runtime-disabled.** A default-constructed [`Telemetry`]
//!    is disabled: handles hold `None` and each record is one branch.
//! 3. **Never perturbs the simulation.** Telemetry only *observes* — it
//!    takes no randomness, orders no events, and is keyed by simulated time,
//!    so enabling it cannot change a simulation's outcome. The determinism
//!    suite enforces this.
//!
//! Collected state lives in a registry shared by `Rc` (simulations are
//! single-threaded by design): monotonic counters, last-value gauges,
//! log-bucketed [`LogHistogram`]s, and a bounded [`Journal`] of structured
//! events. [`Telemetry::export_jsonl`] serialises everything as JSON lines;
//! [`report`] renders exported files back into human-readable tables.
//!
//! Two sibling subsystems follow the same feature-gating rules: the
//! [`trace`] flight recorder captures per-packet lifecycle spans (exported
//! to Perfetto via [`perfetto`] or rendered as a latency breakdown), and
//! the [`profile`] self-profiler aggregates wall-clock scoped timers around
//! the simulator's own hot paths. The [`monitor`] module layers a streaming
//! per-tenant SLO view on the same feed points — sliding sim-time-windowed
//! rates and latency quantiles with declarative alert rules — and
//! [`prometheus`] renders any JSONL export in Prometheus text exposition
//! format for standard scrapers.

pub mod hist;
pub mod journal;
pub mod monitor;
pub mod perfetto;
pub mod profile;
pub mod prometheus;
pub mod report;
pub mod stream;
pub mod trace;

pub use hist::{Bucket, LogHistogram, SUB_BITS};
pub use journal::{Journal, JournalEvent};
pub use monitor::{AlertMetric, AlertRule, QuantileSketch, SloMonitor, ALERT_METRICS};
pub use profile::{ProfileSpan, ProfileStat, Profiler};
pub use stream::{BusReceiver, SnapshotBus, DEFAULT_SUBSCRIBER_CAPACITY};
pub use trace::{TraceConfig, TraceData, TraceKind, TraceRecord, Tracer};

#[cfg(feature = "enabled")]
mod live;
#[cfg(feature = "enabled")]
pub use live::{Counter, Gauge, Histogram, Telemetry, TelemetrySnapshot};

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::{Counter, Gauge, Histogram, Telemetry, TelemetrySnapshot};

/// Version tag written into the `meta` line of every JSONL export.
pub const SCHEMA_VERSION: u64 = 1;

/// Default bound on retained journal events.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;
