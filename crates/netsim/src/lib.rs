#![deny(missing_docs)]

//! # qvisor-netsim — packet-level network simulator
//!
//! The repository's Netbench substitute: a deterministic discrete-event
//! simulator with output-queued hosts and switches, pluggable scheduler
//! models at every port, ECMP routing, pFabric-style reliable transport,
//! CBR/deadline traffic, optional fault injection, and an in-network
//! QVISOR deployment (pre-processor at every egress, runtime monitor at
//! the first hop).

pub mod config;
pub mod report;
pub mod scenario;
pub mod sim;

pub use config::{PreprocScope, QvisorSetup, SchedulerKind, SimConfig};
pub use qvisor_sim::EventCore;
pub use report::{SimReport, TenantTraffic};
pub use scenario::{Engine, ScenarioError, ScenarioSpec, SweepSpec};
pub use sim::{NewCbr, NewFlow, Simulation};
