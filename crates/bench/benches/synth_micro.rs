//! Microbenchmarks for QVISOR's control and data planes:
//!
//! * synthesizer latency vs tenant count (control plane — how fast can the
//!   runtime adapter re-synthesize when tenants come and go, §5);
//! * pre-processor per-packet transformation cost (data plane — the
//!   "applied at line rate" claim of §3.2, including the exact Fig. 3
//!   chain).

use qvisor_bench::harness::{bench, bench_batched, print_header};
use qvisor_core::{synthesize, Policy, PreProcessor, SynthConfig, TenantSpec, UnknownTenantAction};
use qvisor_ranking::RankRange;
use qvisor_sim::{FlowId, Nanos, NodeId, Packet, SimRng, TenantId};

fn specs(n: u16) -> Vec<TenantSpec> {
    (1..=n)
        .map(|i| {
            TenantSpec::new(
                TenantId(i),
                format!("T{i}"),
                "alg",
                RankRange::new(0, 1_000 * i as u64),
            )
        })
        .collect()
}

fn mixed_policy(n: u16) -> String {
    // Alternate the three operators: T1 >> T2 + T3 > T4 >> T5 + T6 > ...
    (1..=n)
        .map(|i| {
            let sep = match i % 3 {
                1 if i > 1 => " >> ",
                2 => " + ",
                _ => " > ",
            };
            if i == 1 {
                "T1".to_string()
            } else {
                format!("{sep}T{i}")
            }
        })
        .collect()
}

fn synth_latency() {
    for n in [2u16, 8, 32, 128] {
        let specs = specs(n);
        let policy = Policy::parse(&mixed_policy(n)).unwrap();
        bench(&format!("synthesize_{n}_tenants"), || {
            synthesize(&specs, &policy, SynthConfig::default()).unwrap()
        });
    }
}

fn preprocessor_cost() {
    let specs = specs(16);
    let policy = Policy::parse(&mixed_policy(16)).unwrap();
    let joint = synthesize(&specs, &policy, SynthConfig::default()).unwrap();
    let pre = PreProcessor::new(&joint, UnknownTenantAction::BestEffort);

    let mut rng = SimRng::seed_from(3);
    let pkts: Vec<Packet> = (0..4_096u64)
        .map(|i| {
            let tenant = TenantId(1 + (rng.below(16) as u16));
            Packet::data(
                FlowId(i),
                tenant,
                i,
                1_500,
                NodeId(0),
                NodeId(1),
                rng.below(16_000),
                Nanos::ZERO,
            )
        })
        .collect();

    bench_batched(
        "transform_4k_pkts_16_tenants",
        || (pre.clone(), pkts.clone()),
        |(mut pre, mut pkts)| {
            for p in &mut pkts {
                pre.process(p);
            }
            pkts.len()
        },
    );

    // The exact Fig. 3 chain as a single-transformation latency probe.
    let fig3_specs = vec![
        TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(7, 9)).with_levels(3),
        TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(1, 3)).with_levels(2),
        TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(3, 5)).with_levels(2),
    ];
    let fig3_policy = Policy::parse("T1 >> T2 + T3").unwrap();
    let fig3 = synthesize(
        &fig3_specs,
        &fig3_policy,
        SynthConfig {
            first_rank: 1,
            ..SynthConfig::default()
        },
    )
    .unwrap();
    let chain = fig3.chain(TenantId(2)).unwrap().clone();
    bench("fig3_chain_apply", || {
        std::hint::black_box(chain.apply(std::hint::black_box(3)))
    });
}

fn main() {
    print_header("synth_micro: synthesizer and pre-processor latency");
    synth_latency();
    preprocessor_cost();
}
