//! Cross-tenant isolation checking over the synthesized layout.
//!
//! Works entirely from the per-tenant *chain-derived* output intervals (not
//! the layout arithmetic — the point is to re-verify the synthesizer's
//! construction independently):
//!
//! - `>>` strict levels: every pair of tenants across a level boundary must
//!   have pairwise-disjoint output spans in the correct order (higher
//!   priority ⇒ strictly smaller ranks).
//! - `+` share groups: members must interleave (pairwise-overlapping
//!   spans) and stay inside the group's band.
//! - `>` preferences: adjacent groups should overlap (bias, not
//!   isolation); degeneration is flagged.
//!
//! Cross-tenant refutations carry a witness pair: one concrete input rank
//! per tenant whose observed outputs demonstrate the violation.

use super::diag::{DiagCode, Diagnostic, Severity, Witness};
use super::{SpecPaths, TenantVerify};
use crate::synth::JointPolicy;
use qvisor_ranking::RankRange;

/// Check every cross-tenant property; `tenants` are the per-chain results
/// in layout order.
pub fn check_layout(
    joint: &JointPolicy,
    paths: &SpecPaths,
    tenants: &[TenantVerify],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    for i in 0..tenants.len() {
        for j in (i + 1)..tenants.len() {
            let (a, b) = (&tenants[i], &tenants[j]);
            if a.level != b.level {
                check_strict_pair(paths, a, b, &mut diags);
            } else if a.group == b.group {
                if !a.output.overlaps(&b.output) {
                    diags.push(Diagnostic {
                        code: DiagCode::ShareBand,
                        severity: Severity::Warning,
                        span: paths.policy(),
                        message: format!(
                            "share group members '{}' ({}) and '{}' ({}) do not \
                             interleave: output spans {} and {} are disjoint",
                            a.name, a.path, b.name, b.path, a.output, b.output
                        ),
                        witness: None,
                    });
                }
            } else if a.group.abs_diff(b.group) == 1 && !a.output.overlaps(&b.output) {
                diags.push(Diagnostic {
                    code: DiagCode::PreferDegenerate,
                    severity: Severity::Warning,
                    span: paths.policy(),
                    message: format!(
                        "preference between '{}' ({}) and '{}' ({}) degenerated to \
                         strict isolation: output spans {} and {} are disjoint",
                        a.name, a.path, b.name, b.path, a.output, b.output
                    ),
                    witness: None,
                });
            }
        }
    }

    // Band containment: each share-group member must stay inside its
    // group's band as placed by the layout.
    for (li, level) in joint.layout.iter().enumerate() {
        for group in &level.groups {
            let band_lo = level.base.saturating_add(group.bias);
            let band_hi = band_lo.saturating_add(group.width.saturating_sub(1));
            let band = RankRange::new(band_lo, band_hi.max(band_lo));
            for member in &group.members {
                let Some(t) = tenants.iter().find(|t| t.tenant == member.tenant) else {
                    continue;
                };
                if t.level == li && !band.contains_range(&t.output) {
                    diags.push(Diagnostic {
                        code: DiagCode::ShareBand,
                        severity: Severity::Warning,
                        span: t.path.clone(),
                        message: format!(
                            "tenant '{}' output span {} escapes its share band {}",
                            t.name, t.output, band
                        ),
                        witness: None,
                    });
                }
            }
        }
    }

    diags
}

/// `a` sits in a higher-priority strict level than `b` (or vice versa):
/// their spans must be disjoint with the higher level strictly below.
fn check_strict_pair(
    paths: &SpecPaths,
    a: &TenantVerify,
    b: &TenantVerify,
    diags: &mut Vec<Diagnostic>,
) {
    // Normalize so `hi` is the higher-priority (smaller level index).
    let (hi, lo) = if a.level < b.level { (a, b) } else { (b, a) };
    if hi.output.strictly_below(&lo.output) {
        return;
    }
    if hi.output.overlaps(&lo.output) {
        // Witness: the higher-priority tenant's worst (largest) observed
        // output vs the lower-priority tenant's best (smallest).
        let (wa_in, wa_out) = hi.observed_max;
        let (wb_in, wb_out) = lo.observed_min;
        let message = format!(
            "strict levels {} and {} overlap: tenant '{}' ({}) spans {} and \
             tenant '{}' ({}) spans {}",
            hi.level, lo.level, hi.name, hi.path, hi.output, lo.name, lo.path, lo.output
        );
        if wa_out >= wb_out {
            diags.push(Diagnostic {
                code: DiagCode::StrictOverlap,
                severity: Severity::Error,
                span: paths.policy(),
                message,
                witness: Some(Witness {
                    input_a: wa_in,
                    output_a: wa_out,
                    input_b: wb_in,
                    output_b: wb_out,
                }),
            });
        } else {
            // The sound intervals overlap but no concrete pair was
            // observed to: over-approximation, not a proven violation.
            diags.push(Diagnostic {
                code: DiagCode::StrictOverlap,
                severity: Severity::Warning,
                span: paths.policy(),
                message: format!("{message} (interval over-approximation; no concrete witness)"),
                witness: None,
            });
        }
    } else {
        // Disjoint but inverted: the whole higher-priority band sits above
        // the lower-priority one. Any pair of observed outputs witnesses.
        let (wa_in, wa_out) = hi.observed_min;
        let (wb_in, wb_out) = lo.observed_max;
        diags.push(Diagnostic {
            code: DiagCode::StrictOrder,
            severity: Severity::Error,
            span: paths.policy(),
            message: format!(
                "strict levels {} and {} are ordered backwards: tenant '{}' ({}) \
                 spans {} entirely above tenant '{}' ({}) spanning {}",
                hi.level, lo.level, hi.name, hi.path, hi.output, lo.name, lo.path, lo.output
            ),
            witness: Some(Witness {
                input_a: wa_in,
                output_a: wa_out,
                input_b: wb_in,
                output_b: wb_out,
            }),
        });
    }
}
