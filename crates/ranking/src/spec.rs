//! Declarative rank-function specifications.
//!
//! Completes the Fig. 1 Configuration API on the tenant side: a rank
//! function described as data (JSON-serializable), buildable into the
//! corresponding [`RankFn`] implementation. Simulation harnesses can keep
//! an entire experiment — topology, tenants, rank functions, policy — in
//! one config file.

use crate::funcs::{ArrivalTime, ByteCountFq, Constant, Edf, Lstf, PFabric, Stfq};
use crate::multi::MultiObjective;
use crate::RankFn;
use qvisor_sim::Nanos;
use serde::{Deserialize, Serialize};

/// A rank function as data. See the variants for parameter meanings; all
/// produce ranks where lower = more urgent.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "algorithm", rename_all = "snake_case")]
pub enum RankFnSpec {
    /// pFabric/SRPT: remaining flow size.
    PFabric {
        /// Bytes per rank unit.
        unit_bytes: u64,
        /// Largest emitted rank.
        max_rank: u64,
    },
    /// Earliest deadline first: slack to deadline.
    Edf {
        /// Nanoseconds per rank unit.
        unit_ns: u64,
        /// Largest emitted rank.
        max_rank: u64,
    },
    /// Least slack time first.
    Lstf {
        /// Nanoseconds per rank unit.
        unit_ns: u64,
        /// Largest emitted rank.
        max_rank: u64,
        /// Line rate used to estimate remaining transmission time.
        line_rate_bps: u64,
    },
    /// Start-time fair queueing.
    Stfq {
        /// Largest emitted rank.
        max_rank: u64,
    },
    /// Byte-count fair queueing (bytes already sent).
    ByteCountFq {
        /// Bytes per rank unit.
        unit_bytes: u64,
        /// Largest emitted rank.
        max_rank: u64,
    },
    /// FIFO+ arrival-time ranking.
    ArrivalTime {
        /// Nanoseconds per rank unit.
        unit_ns: u64,
        /// Largest emitted rank.
        max_rank: u64,
    },
    /// A constant rank.
    Constant {
        /// The rank.
        rank: u64,
    },
    /// Weighted multi-objective combination (§5).
    MultiObjective {
        /// `(component, weight)` pairs.
        components: Vec<(RankFnSpec, u32)>,
        /// Per-component normalization resolution.
        resolution: u64,
    },
}

impl RankFnSpec {
    /// Instantiate the described rank function.
    pub fn build(&self) -> Box<dyn RankFn> {
        match self {
            RankFnSpec::PFabric {
                unit_bytes,
                max_rank,
            } => Box::new(PFabric::new(*unit_bytes, *max_rank)),
            RankFnSpec::Edf { unit_ns, max_rank } => Box::new(Edf::new(Nanos(*unit_ns), *max_rank)),
            RankFnSpec::Lstf {
                unit_ns,
                max_rank,
                line_rate_bps,
            } => Box::new(Lstf::new(Nanos(*unit_ns), *max_rank, *line_rate_bps)),
            RankFnSpec::Stfq { max_rank } => Box::new(Stfq::new(*max_rank)),
            RankFnSpec::ByteCountFq {
                unit_bytes,
                max_rank,
            } => Box::new(ByteCountFq::new(*unit_bytes, *max_rank)),
            RankFnSpec::ArrivalTime { unit_ns, max_rank } => {
                Box::new(ArrivalTime::new(Nanos(*unit_ns), *max_rank))
            }
            RankFnSpec::Constant { rank } => Box::new(Constant(*rank)),
            RankFnSpec::MultiObjective {
                components,
                resolution,
            } => Box::new(MultiObjective::new(
                components
                    .iter()
                    .map(|(spec, w)| (spec.build(), *w))
                    .collect(),
                *resolution,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::RankCtx;
    use qvisor_sim::FlowId;

    #[test]
    fn every_variant_builds_and_ranks() {
        let specs = vec![
            RankFnSpec::PFabric {
                unit_bytes: 1_000,
                max_rank: 100,
            },
            RankFnSpec::Edf {
                unit_ns: 1_000,
                max_rank: 100,
            },
            RankFnSpec::Lstf {
                unit_ns: 1_000,
                max_rank: 100,
                line_rate_bps: 1_000_000,
            },
            RankFnSpec::Stfq { max_rank: 100 },
            RankFnSpec::ByteCountFq {
                unit_bytes: 1_000,
                max_rank: 100,
            },
            RankFnSpec::ArrivalTime {
                unit_ns: 1_000,
                max_rank: 100,
            },
            RankFnSpec::Constant { rank: 7 },
        ];
        let ctx = RankCtx::simple(Nanos::from_micros(5), FlowId(1), 50_000, 10_000);
        for spec in specs {
            let mut f = spec.build();
            let r = f.rank(&ctx);
            assert!(f.range().contains(r), "{spec:?} emitted {r}");
        }
    }

    #[test]
    fn json_roundtrip() {
        let spec = RankFnSpec::MultiObjective {
            components: vec![
                (
                    RankFnSpec::PFabric {
                        unit_bytes: 1_000,
                        max_rank: 1_000,
                    },
                    7,
                ),
                (
                    RankFnSpec::Edf {
                        unit_ns: 1_000,
                        max_rank: 1_000,
                    },
                    3,
                ),
            ],
            resolution: 1_000,
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: RankFnSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        let mut f = back.build();
        assert_eq!(f.name(), "multi-objective");
        let ctx = RankCtx::simple(Nanos::ZERO, FlowId(1), 1_000, 0);
        assert!(f.range().contains(f.rank(&ctx)));
    }

    #[test]
    fn json_shape_is_human_writable() {
        let json = r#"{"algorithm": "p_fabric", "unit_bytes": 1000, "max_rank": 100000}"#;
        let spec: RankFnSpec = serde_json::from_str(json).unwrap();
        assert_eq!(
            spec,
            RankFnSpec::PFabric {
                unit_bytes: 1_000,
                max_rank: 100_000
            }
        );
    }
}
