//! Implementation of the `qvisor` command-line tool.
//!
//! Kept as a library module (the binary in `src/bin/qvisor.rs` is a thin
//! wrapper) so every command is unit-testable: each takes parsed inputs
//! and returns the text it would print.

use qvisor_core::{
    analyze, compile, verify, DeploymentConfig, HardwareModel, QvisorError, SpecPaths, VerifyReport,
};
use qvisor_netsim::{Engine, ScenarioError, ScenarioSpec, SweepSpec};
use qvisor_scheduler::Capacity;
use std::fmt::Write as _;

/// CLI-level errors: usage problems or underlying QVISOR errors.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (prints usage).
    Usage(String),
    /// I/O problem reading a config file.
    Io(std::io::Error),
    /// QVISOR rejected the input.
    Qvisor(QvisorError),
    /// A telemetry export file could not be parsed.
    Telemetry(String),
    /// A scenario or sweep document was rejected.
    Scenario(ScenarioError),
    /// An output file could not be written.
    Output {
        /// The path that failed.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// `qvisor check` refuted the policy (or found warnings under
    /// `--deny-warnings`). Carries the rendered report and whether any
    /// error-severity finding exists (vs a pure warning promotion).
    Check {
        /// The rendered report text/JSONL.
        report: String,
        /// True when some report contains error-severity findings; false
        /// when the gate failed only via `--deny-warnings` promotion.
        errors: bool,
    },
    /// The control-plane daemon failed to start or run.
    Serve(String),
    /// `qvisor fuzz` found verifier-vs-simulation disagreements. Carries
    /// the campaign summary (including the minimized cases).
    Fuzz(String),
}

impl CliError {
    /// Process exit code for scripting: `0` is success, `2` a `check`
    /// gate failure with error-severity findings, `3` a `check` failure
    /// caused purely by `--deny-warnings` promotion, and `1` everything
    /// else (usage, I/O, parse errors, fuzz disagreements, ...). The
    /// serve daemon's admission scripts rely on this distinction.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Check { errors: true, .. } => 2,
            CliError::Check { errors: false, .. } => 3,
            _ => 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}\n\n{USAGE}"),
            CliError::Io(e) => write!(f, "cannot read configuration: {e}"),
            CliError::Qvisor(e) => write!(f, "{e}"),
            CliError::Telemetry(msg) => write!(f, "invalid telemetry export: {msg}"),
            CliError::Scenario(e) => write!(f, "{e}"),
            CliError::Output { path, source } => write!(f, "cannot write {path}: {source}"),
            CliError::Check { report, .. } => write!(f, "{report}check: verification FAILED"),
            CliError::Serve(msg) => write!(f, "serve error: {msg}"),
            CliError::Fuzz(summary) => write!(f, "{summary}fuzz: conformance FAILED"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ScenarioError> for CliError {
    fn from(e: ScenarioError) -> CliError {
        CliError::Scenario(e)
    }
}

impl From<QvisorError> for CliError {
    fn from(e: QvisorError) -> CliError {
        CliError::Qvisor(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> CliError {
        CliError::Io(e)
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
qvisor — multi-tenant packet scheduling hypervisor (HotNets '23 reproduction)

USAGE:
    qvisor synth   <config.json>                 synthesize and show chains
    qvisor analyze <config.json>                 verify worst-case guarantees
    qvisor compile <config.json> --queues N --rank-bits B
                                                 fit onto constrained hardware
    qvisor check <file.json>                     statically verify a policy
               [--deny-warnings] [--jsonl]       (config, scenario, or sweep)
    qvisor run <scenario.json>                   run a declarative scenario
               [--telemetry PATH] [--trace PATH] [--monitor PATH]
               [--shards N] [--deny-warnings]
    qvisor sweep <sweep.json> [--jobs N]         run a scenario grid in parallel
               [--out PATH] [--telemetry PREFIX] [--shards N]
               [--deny-warnings]
    qvisor serve <config.json>                   run the control-plane daemon
               [--listen ADDR] [--deny-warnings] (line-delimited JSON over TCP)
    qvisor monitor <addr|export.jsonl|->         live per-tenant SLO health view
                                                 (subscribes to a daemon, or
                                                 renders a JSONL export offline)
    qvisor fuzz [--seed N] [--cases N]           differential fuzz campaign:
               [--jobs N] [--out DIR]            verifier verdicts vs exact-PIFO
                                                 simulation; summary is
                                                 byte-identical at any --jobs
    qvisor telemetry report <export.jsonl>       render a telemetry export
    qvisor trace report <trace.jsonl>            latency breakdown + inversions
    qvisor trace export <trace.jsonl>            convert to Chrome/Perfetto JSON
    qvisor example                               print a starter config
    qvisor help                                  show this help (also --help, -h)

Report commands accept '-' in place of a file to read from stdin.

Scenario files describe a full simulation declaratively (topology, workloads,
schedulers, QVISOR deployment); see examples/scenarios/. Sweep files add a
grid of overrides on top of a base scenario; see examples/sweeps/. Sweep
output is byte-identical at any --jobs level.

`--shards N` (or `sim.shards` in the scenario) partitions the discrete-event
engine across N worker threads, one topology region each, with conservative
lookahead windows on the cut links. The report and telemetry export are
byte-identical at any shard count — the sequential engine is the oracle.

Scenarios may declare `alerts` rules ({metric, tenant, window_ns, threshold});
`run --monitor PATH` evaluates them over sliding sim-time windows and writes
the SLO monitor export (per-tenant health plus fired/resolved alert events)
as JSONL. `monitor` renders that export — or a telemetry export, or a live
daemon's stream — as a per-tenant health table. Alert sim-times are
deterministic: identical across runs and at any --jobs level.

`check` proves (or refutes, with concrete witness rank pairs) that the
synthesized policy is overflow-free, order-preserving, and isolating —
without running a simulation. It auto-detects the file kind and checks every
grid point of a sweep. The same verifier gates `run` and `sweep`: errors
always refuse to build; --deny-warnings also refuses on warnings. `check`
also replays fuzz corpus documents (objects with `config` + `expect`).
Exit codes: 0 = gate passed, 2 = check failed with errors, 3 = check failed
only via --deny-warnings promotion, 1 = any other error.

`fuzz` generates random deployments over the full `>>`/`>`/`+` grammar,
verifies each, and differentially replays witnesses and schedules on an
exact PIFO; disagreements are minimized into replayable corpus documents
(written to --out DIR when given). Reproduce any case with the same --seed.

The config file is the Fig. 1 Configuration API as JSON:
    { \"tenants\": [ {\"id\": 1, \"name\": \"T1\", \"algorithm\": \"pFabric\",
                     \"rank_min\": 0, \"rank_max\": 100000, \"levels\": 512}, ... ],
      \"policy\": \"T1 >> T2 + T3\" }
";

/// Run the CLI against `args` (without the program name); returns the text
/// to print on success.
pub fn run(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("synth") => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("synth needs a config file".into()))?;
            cmd_synth(&std::fs::read_to_string(path)?)
        }
        Some("analyze") => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("analyze needs a config file".into()))?;
            cmd_analyze(&std::fs::read_to_string(path)?)
        }
        Some("compile") => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("compile needs a config file".into()))?;
            let (queues, rank_bits) = parse_compile_flags(&args[2..])?;
            cmd_compile(&std::fs::read_to_string(path)?, queues, rank_bits)
        }
        Some("check") => {
            let path = args.get(1).ok_or_else(|| {
                CliError::Usage("check needs a config, scenario, or sweep file".into())
            })?;
            let opts = parse_check_flags(&args[2..])?;
            cmd_check(&std::fs::read_to_string(path)?, &opts)
        }
        Some("run") => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("run needs a scenario file".into()))?;
            let opts = parse_run_flags(&args[2..])?;
            cmd_run(&std::fs::read_to_string(path)?, &opts)
        }
        Some("sweep") => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("sweep needs a sweep file".into()))?;
            let opts = parse_sweep_flags(&args[2..])?;
            cmd_sweep(&std::fs::read_to_string(path)?, &opts)
        }
        Some("telemetry") => match args.get(1).map(String::as_str) {
            Some("report") => {
                let path = args.get(2).ok_or_else(|| {
                    CliError::Usage("telemetry report needs an export file".into())
                })?;
                cmd_telemetry_report(&read_input(path)?)
            }
            Some(other) => Err(CliError::Usage(format!(
                "unknown telemetry subcommand '{other}'"
            ))),
            None => Err(CliError::Usage("telemetry needs a subcommand".into())),
        },
        Some("trace") => match args.get(1).map(String::as_str) {
            Some("report") => {
                let path = args
                    .get(2)
                    .ok_or_else(|| CliError::Usage("trace report needs a trace file".into()))?;
                cmd_trace_report(&read_input(path)?)
            }
            Some("export") => {
                let path = args
                    .get(2)
                    .ok_or_else(|| CliError::Usage("trace export needs a trace file".into()))?;
                cmd_trace_export(&read_input(path)?)
            }
            Some(other) => Err(CliError::Usage(format!(
                "unknown trace subcommand '{other}'"
            ))),
            None => Err(CliError::Usage("trace needs a subcommand".into())),
        },
        Some("serve") => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("serve needs a daemon config file".into()))?;
            let opts = parse_serve_flags(&args[2..])?;
            cmd_serve(&std::fs::read_to_string(path)?, &opts)
        }
        Some("fuzz") => {
            let opts = parse_fuzz_flags(&args[1..])?;
            cmd_fuzz(&opts)
        }
        Some("monitor") => {
            let target = args.get(1).ok_or_else(|| {
                CliError::Usage("monitor needs a daemon address, an export file, or '-'".into())
            })?;
            cmd_monitor(target)
        }
        Some("example") => Ok(example_config()),
        Some("help" | "--help" | "-h") => Ok(USAGE.to_string()),
        Some(other) => Err(CliError::Usage(format!("unknown command '{other}'"))),
        None => Err(CliError::Usage("no command given".into())),
    }
}

fn parse_compile_flags(args: &[String]) -> Result<(usize, u32), CliError> {
    let mut queues = 8usize;
    let mut rank_bits = 16u32;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--queues" => {
                queues = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| CliError::Usage("--queues needs a number".into()))?;
                i += 2;
            }
            "--rank-bits" => {
                rank_bits = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&b| (1..=63).contains(&b))
                    .ok_or_else(|| CliError::Usage("--rank-bits needs 1..=63".into()))?;
                i += 2;
            }
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
    }
    Ok((queues, rank_bits))
}

/// Options for `qvisor serve`.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub listen: String,
    /// Reject submissions whose verification reports warnings.
    pub deny_warnings: bool,
}

impl Default for ServeOpts {
    fn default() -> ServeOpts {
        ServeOpts {
            listen: "127.0.0.1:4733".to_string(),
            deny_warnings: false,
        }
    }
}

fn parse_serve_flags(args: &[String]) -> Result<ServeOpts, CliError> {
    let mut opts = ServeOpts::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                opts.listen = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage("--listen needs an address".into()))?
                    .clone();
                i += 2;
            }
            "--deny-warnings" => {
                opts.deny_warnings = true;
                i += 1;
            }
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
    }
    Ok(opts)
}

/// `qvisor serve`: run the control-plane daemon until a client sends
/// `{"op":"shutdown"}`. The bound address is announced on stderr (so
/// scripts using `--listen 127.0.0.1:0` can discover the port) and the
/// run summary is returned for stdout.
fn cmd_serve(config_text: &str, opts: &ServeOpts) -> Result<String, CliError> {
    let config = DeploymentConfig::from_json(config_text)?;
    let daemon = qvisor_serve::Daemon::start(
        config,
        qvisor_serve::ServeOptions {
            listen: opts.listen.clone(),
            deny_warnings: opts.deny_warnings,
        },
    )
    .map_err(CliError::Serve)?;
    eprintln!("serve: listening on {}", daemon.local_addr());
    Ok(daemon.wait())
}

/// Options for `qvisor run`.
#[derive(Debug, Default)]
pub struct RunOpts {
    /// Write the telemetry export (JSONL) here.
    pub telemetry: Option<String>,
    /// Write the packet-lifecycle trace snapshot (JSONL) here.
    pub trace: Option<String>,
    /// Write the SLO monitor export (JSONL) here; enables the streaming
    /// monitor and evaluates the scenario's declared alert rules.
    pub monitor: Option<String>,
    /// Override `sim.shards`: partition the engine across this many worker
    /// threads (the report stays byte-identical at any value).
    pub shards: Option<usize>,
    /// Refuse to run when the verifier finds warnings (errors always refuse).
    pub deny_warnings: bool,
}

fn parse_run_flags(args: &[String]) -> Result<RunOpts, CliError> {
    let mut opts = RunOpts::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--telemetry" => {
                opts.telemetry = Some(
                    args.get(i + 1)
                        .ok_or_else(|| CliError::Usage("--telemetry needs a path".into()))?
                        .clone(),
                );
                i += 2;
            }
            "--trace" => {
                opts.trace = Some(
                    args.get(i + 1)
                        .ok_or_else(|| CliError::Usage("--trace needs a path".into()))?
                        .clone(),
                );
                i += 2;
            }
            "--monitor" => {
                opts.monitor = Some(
                    args.get(i + 1)
                        .ok_or_else(|| CliError::Usage("--monitor needs a path".into()))?
                        .clone(),
                );
                i += 2;
            }
            "--shards" => {
                opts.shards = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .filter(|&s| s >= 1)
                        .ok_or_else(|| {
                            CliError::Usage("--shards needs a positive number".into())
                        })?,
                );
                i += 2;
            }
            "--deny-warnings" => {
                opts.deny_warnings = true;
                i += 1;
            }
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
    }
    Ok(opts)
}

/// Options for `qvisor check`.
#[derive(Debug, Default)]
pub struct CheckOpts {
    /// Fail on warnings too (errors always fail).
    pub deny_warnings: bool,
    /// Emit machine-readable JSONL instead of the text report.
    pub jsonl: bool,
}

fn parse_check_flags(args: &[String]) -> Result<CheckOpts, CliError> {
    let mut opts = CheckOpts::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny-warnings" => {
                opts.deny_warnings = true;
                i += 1;
            }
            "--jsonl" => {
                opts.jsonl = true;
                i += 1;
            }
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
    }
    Ok(opts)
}

/// Options for `qvisor fuzz`.
#[derive(Clone, Debug)]
pub struct FuzzOpts {
    /// Campaign seed (every case is a pure function of `(seed, index)`).
    pub seed: u64,
    /// Number of generated deployments to check.
    pub cases: u64,
    /// Worker threads (the summary is byte-identical at any value).
    pub jobs: usize,
    /// Directory to write minimized disagreement corpus documents into.
    pub out: Option<String>,
}

impl Default for FuzzOpts {
    fn default() -> FuzzOpts {
        FuzzOpts {
            seed: qvisor_fuzz::DEFAULT_SEED,
            cases: 1000,
            jobs: 1,
            out: None,
        }
    }
}

fn parse_fuzz_flags(args: &[String]) -> Result<FuzzOpts, CliError> {
    let mut opts = FuzzOpts::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                opts.seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| CliError::Usage("--seed needs a number".into()))?;
                i += 2;
            }
            "--cases" => {
                opts.cases = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&c| c >= 1)
                    .ok_or_else(|| CliError::Usage("--cases needs a positive number".into()))?;
                i += 2;
            }
            "--jobs" => {
                opts.jobs = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&j| j >= 1)
                    .ok_or_else(|| CliError::Usage("--jobs needs a positive number".into()))?;
                i += 2;
            }
            "--out" => {
                opts.out = Some(
                    args.get(i + 1)
                        .ok_or_else(|| CliError::Usage("--out needs a directory".into()))?
                        .clone(),
                );
                i += 2;
            }
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
    }
    Ok(opts)
}

/// `qvisor fuzz`: run a differential fuzz campaign — generated policies,
/// verifier verdicts, witness replays, and exact-PIFO schedule oracles —
/// and print the deterministic summary. Disagreements fail the command;
/// their minimized corpus documents are written under `--out` when given.
pub fn cmd_fuzz(opts: &FuzzOpts) -> Result<String, CliError> {
    let report = qvisor_fuzz::run_campaign(&qvisor_fuzz::CampaignOpts {
        seed: opts.seed,
        cases: opts.cases,
        jobs: opts.jobs,
    });
    let mut out = report.summary();
    if !report.conformant() {
        if let Some(dir) = &opts.out {
            std::fs::create_dir_all(dir).map_err(|source| CliError::Output {
                path: dir.clone(),
                source,
            })?;
            for f in &report.failures {
                let path = format!("{dir}/fuzz_seed{}_case{}.json", opts.seed, f.index);
                write_output(&path, &format!("{}\n", f.minimized.to_pretty()))?;
                out.push_str(&format!("wrote {path}\n"));
            }
        }
        return Err(CliError::Fuzz(out));
    }
    Ok(out)
}

/// Options for `qvisor sweep`.
#[derive(Debug)]
pub struct SweepOpts {
    /// Worker threads (grid points run one engine per thread).
    pub jobs: usize,
    /// Write the merged results document here instead of stdout.
    pub out: Option<String>,
    /// Write per-point telemetry snapshots as `PREFIX.point<i>.telemetry.jsonl`.
    pub telemetry: Option<String>,
    /// Override `sim.shards` in the base scenario: every grid point runs
    /// on the sharded engine (reports stay byte-identical at any value).
    pub shards: Option<usize>,
    /// Refuse to run when the verifier finds warnings (errors always refuse).
    pub deny_warnings: bool,
}

impl Default for SweepOpts {
    fn default() -> SweepOpts {
        SweepOpts {
            jobs: 1,
            out: None,
            telemetry: None,
            shards: None,
            deny_warnings: false,
        }
    }
}

fn parse_sweep_flags(args: &[String]) -> Result<SweepOpts, CliError> {
    let mut opts = SweepOpts::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                opts.jobs = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&j| j >= 1)
                    .ok_or_else(|| CliError::Usage("--jobs needs a positive number".into()))?;
                i += 2;
            }
            "--out" => {
                opts.out = Some(
                    args.get(i + 1)
                        .ok_or_else(|| CliError::Usage("--out needs a path".into()))?
                        .clone(),
                );
                i += 2;
            }
            "--telemetry" => {
                opts.telemetry = Some(
                    args.get(i + 1)
                        .ok_or_else(|| CliError::Usage("--telemetry needs a prefix".into()))?
                        .clone(),
                );
                i += 2;
            }
            "--shards" => {
                opts.shards = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .filter(|&s| s >= 1)
                        .ok_or_else(|| {
                            CliError::Usage("--shards needs a positive number".into())
                        })?,
                );
                i += 2;
            }
            "--deny-warnings" => {
                opts.deny_warnings = true;
                i += 1;
            }
            other => return Err(CliError::Usage(format!("unknown flag '{other}'"))),
        }
    }
    Ok(opts)
}

/// Write an output file, reporting the offending path on failure instead
/// of panicking.
fn write_output(path: &str, contents: &str) -> Result<(), CliError> {
    std::fs::write(path, contents).map_err(|source| CliError::Output {
        path: path.to_string(),
        source,
    })
}

/// `qvisor check`: statically verify a policy without running anything.
/// Auto-detects the document kind — a sweep (has `base`; every grid point
/// is checked), a scenario (has `topology`/`workloads`), a fuzz corpus
/// document (has `config` + `expect`; replayed against its recorded
/// verdict), or a raw deployment config (`tenants` + `policy`).
pub fn cmd_check(json: &str, opts: &CheckOpts) -> Result<String, CliError> {
    use qvisor_sim::json::Value;
    let v = Value::parse(json).map_err(|e| CliError::Scenario(ScenarioError::Json(e)))?;
    if qvisor_fuzz::is_corpus_doc(&v) {
        return cmd_check_corpus(json, opts);
    }
    // `(label, report)` pairs: sweeps produce one per grid point, the
    // other kinds a single unlabeled report.
    let reports: Vec<(String, VerifyReport)> = if v.get("base").is_some() {
        let sweep = SweepSpec::from_value(&v)?;
        let engine = Engine::new();
        let paths = SpecPaths::with_prefix("base.qvisor.");
        let mut out = Vec::new();
        for point in sweep.points()? {
            let label = if point.label.is_empty() {
                format!("point {}", point.index)
            } else {
                point.label.clone()
            };
            out.push((label, engine.check_with_paths(&point.spec, &paths)?));
        }
        out
    } else if v.get("topology").is_some() || v.get("workloads").is_some() {
        let spec = ScenarioSpec::from_value(&v)?;
        vec![(String::new(), Engine::new().check(&spec)?)]
    } else {
        let config = DeploymentConfig::from_json(json)?;
        let joint = config.synthesize()?;
        vec![(String::new(), verify(&joint, &SpecPaths::config()))]
    };

    let mut out = String::new();
    for (label, report) in &reports {
        if opts.jsonl {
            if !label.is_empty() {
                let line = Value::object()
                    .set("type", "point")
                    .set("label", label.as_str());
                out.push_str(&line.to_compact());
                out.push('\n');
            }
            out.push_str(&report.to_jsonl());
        } else {
            if !label.is_empty() {
                writeln!(out, "== {label} ==").unwrap();
            }
            out.push_str(&report.render_text());
        }
    }
    if reports
        .iter()
        .any(|(_, r)| r.gate_fails(opts.deny_warnings))
    {
        let errors = reports.iter().any(|(_, r)| r.has_errors());
        return Err(CliError::Check {
            report: out,
            errors,
        });
    }
    if !opts.jsonl {
        out.push_str("check: OK\n");
    }
    Ok(out)
}

/// `qvisor check` on a fuzz corpus document: re-verify the stored config,
/// re-run the witness and queue oracles, and require the recorded verdict
/// to reproduce exactly. A drift (or any verifier-vs-simulation
/// disagreement) fails like an error-severity check.
fn cmd_check_corpus(json: &str, opts: &CheckOpts) -> Result<String, CliError> {
    use qvisor_sim::json::Value;
    match qvisor_fuzz::replay_corpus(json) {
        Ok(replay) => {
            let mut out = String::new();
            if opts.jsonl {
                out.push_str(&replay.report.to_jsonl());
                let line = Value::object()
                    .set("type", "fuzz_replay")
                    .set("verdict", replay.outcome.verdict.as_str())
                    .set("cross_inversions", replay.outcome.cross_inversions);
                out.push_str(&line.to_compact());
                out.push('\n');
            } else {
                out.push_str(&replay.report.render_text());
                writeln!(
                    out,
                    "fuzz replay: recorded verdict '{}' reproduced ({} cross-tenant inversions)",
                    replay.outcome.verdict.as_str(),
                    replay.outcome.cross_inversions
                )
                .unwrap();
                out.push_str("check: OK\n");
            }
            Ok(out)
        }
        Err(msg) => Err(CliError::Check {
            report: format!("fuzz replay: {msg}\n"),
            errors: true,
        }),
    }
}

/// The `verify:` banner for a scenario: one line per warning-or-worse
/// verifier finding. Printed to stderr by `cmd_run` so stdout stays pure
/// report JSON.
fn verify_banner(engine: &Engine, spec: &ScenarioSpec) -> Result<String, CliError> {
    let mut banner = String::new();
    for d in engine.check(spec)?.gate_findings() {
        writeln!(banner, "verify: {d}").unwrap();
    }
    Ok(banner)
}

/// `qvisor run`: materialize and execute one declarative scenario, printing
/// the deterministic report JSON to stdout. Verifier findings at warning
/// level or above are surfaced first, one `verify:` line each on stderr
/// (the engine refuses to build on errors, or on warnings under
/// `--deny-warnings`).
pub fn cmd_run(scenario_json: &str, opts: &RunOpts) -> Result<String, CliError> {
    use qvisor_telemetry::{SloMonitor, Telemetry, TraceConfig, Tracer};
    let mut spec = ScenarioSpec::from_json(scenario_json)?;
    if let Some(n) = opts.shards {
        spec.sim.shards = n;
    }
    let telemetry = if opts.telemetry.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let tracer = if opts.trace.is_some() {
        Tracer::enabled(TraceConfig::default())
    } else {
        Tracer::disabled()
    };
    let monitor = if opts.monitor.is_some() {
        SloMonitor::enabled(spec.alert_rules())
    } else {
        SloMonitor::disabled()
    };
    let engine = Engine::new()
        .with_telemetry(&telemetry)
        .with_tracer(&tracer)
        .with_monitor(&monitor)
        .with_deny_warnings(opts.deny_warnings);
    eprint!("{}", verify_banner(&engine, &spec)?);
    let mut out = String::new();
    let report = engine.run(&spec)?;
    if let Some(path) = &opts.telemetry {
        write_output(path, &telemetry.export_jsonl())?;
    }
    if let Some(path) = &opts.trace {
        write_output(path, &tracer.snapshot().to_jsonl())?;
    }
    if let Some(path) = &opts.monitor {
        write_output(path, &monitor.export_jsonl())?;
    }
    writeln!(
        out,
        "{}",
        qvisor_netsim::scenario::report_json(&report).to_pretty()
    )
    .unwrap();
    Ok(out)
}

/// `qvisor sweep`: run a scenario grid across worker threads and emit the
/// merged results document (byte-identical at any `--jobs` level).
pub fn cmd_sweep(sweep_json: &str, opts: &SweepOpts) -> Result<String, CliError> {
    use qvisor_netsim::scenario::{merged_value, run_sweep};
    let mut spec = SweepSpec::from_json(sweep_json)?;
    if let Some(n) = opts.shards {
        use qvisor_sim::json::Value;
        let sim = spec
            .base
            .get("sim")
            .cloned()
            .unwrap_or_else(Value::object)
            .set("shards", n as u64);
        spec.base = std::mem::replace(&mut spec.base, Value::Null).set("sim", sim);
    }
    let results = run_sweep(
        &spec,
        opts.jobs,
        opts.telemetry.is_some(),
        opts.deny_warnings,
    )?;
    let mut out = String::new();
    if let Some(prefix) = &opts.telemetry {
        for r in &results {
            let path = format!("{prefix}.point{}.telemetry.jsonl", r.index);
            write_output(&path, r.telemetry_jsonl.as_deref().unwrap_or(""))?;
            writeln!(out, "wrote {path}").unwrap();
        }
    }
    let merged = format!("{}\n", merged_value(&spec, &results).to_pretty());
    match &opts.out {
        Some(path) => {
            write_output(path, &merged)?;
            writeln!(out, "wrote {path}").unwrap();
        }
        None => out.push_str(&merged),
    }
    Ok(out)
}

/// `qvisor synth`: synthesize and print the per-tenant chains.
pub fn cmd_synth(config_json: &str) -> Result<String, CliError> {
    let config = DeploymentConfig::from_json(config_json)?;
    let joint = config.synthesize()?;
    let mut out = String::new();
    writeln!(out, "policy      : {}", joint.policy).unwrap();
    writeln!(out, "rank span   : {}", joint.output_span()).unwrap();
    for spec in &joint.specs {
        if let Some(chain) = joint.chain(spec.id) {
            writeln!(out, "  {:<12} {}", spec.name, chain).unwrap();
        }
    }
    writeln!(out).unwrap();
    write!(out, "{}", analyze(&joint)).unwrap();
    Ok(out)
}

/// `qvisor analyze`: guarantees report only; exit error text if violated.
pub fn cmd_analyze(config_json: &str) -> Result<String, CliError> {
    let config = DeploymentConfig::from_json(config_json)?;
    let joint = config.synthesize()?;
    let report = analyze(&joint);
    let mut out = report.to_string();
    if !report.all_guarantees_hold() {
        out.push_str("\nRESULT: guarantees VIOLATED\n");
    } else {
        out.push_str("\nRESULT: ok\n");
    }
    Ok(out)
}

/// `qvisor compile`: fit onto hardware with the concession ladder.
pub fn cmd_compile(config_json: &str, queues: usize, rank_bits: u32) -> Result<String, CliError> {
    let config = DeploymentConfig::from_json(config_json)?;
    let (specs, policy, synth) = config.build()?;
    let hw = HardwareModel {
        queues,
        max_rank: (1u64 << rank_bits) - 1,
        buffer: Capacity::packets(64, 1_500),
    };
    let out = compile(&specs, &policy, synth, &hw)?;
    let mut text = String::new();
    writeln!(text, "target      : {queues} queues, {rank_bits}-bit ranks").unwrap();
    writeln!(text, "deployed    : {}", out.policy).unwrap();
    writeln!(text, "rank span   : {}", out.joint.output_span()).unwrap();
    if out.concessions.is_empty() {
        writeln!(text, "concessions : none (faithful)").unwrap();
    } else {
        writeln!(text, "concessions :").unwrap();
        for c in &out.concessions {
            writeln!(text, "  - {c}").unwrap();
        }
    }
    writeln!(
        text,
        "guarantees  : {}",
        if out.guarantees.all_guarantees_hold() {
            "all hold"
        } else {
            "violations present"
        }
    )
    .unwrap();
    Ok(text)
}

/// Read a report input: `-` means stdin, anything else is a file path.
fn read_input(path: &str) -> Result<String, CliError> {
    if path == "-" {
        use std::io::Read as _;
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| CliError::Telemetry(format!("cannot read stdin: {e}")))?;
        Ok(text)
    } else {
        std::fs::read_to_string(path)
            .map_err(|e| CliError::Telemetry(format!("cannot read {path}: {e}")))
    }
}

/// `qvisor monitor`: per-tenant SLO health. `-` reads an export from
/// stdin, an existing file is rendered offline, and anything else is
/// treated as a daemon address to subscribe to (one health table per
/// telemetry snapshot, until the daemon shuts the stream down).
pub fn cmd_monitor(target: &str) -> Result<String, CliError> {
    if target != "-" && std::fs::metadata(target).is_err() {
        return cmd_monitor_live(target);
    }
    render_monitor_export(&read_input(target)?)
}

/// Offline half of `qvisor monitor`: a telemetry or SLO-monitor JSONL
/// export becomes one health table plus the tail of alert transitions.
pub fn render_monitor_export(jsonl: &str) -> Result<String, CliError> {
    let export = qvisor_telemetry::report::parse(jsonl).map_err(CliError::Telemetry)?;
    let mut out = qvisor_telemetry::monitor::render_health(&export);
    let alerts: Vec<&qvisor_sim::json::Value> = export
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.get("kind").and_then(qvisor_sim::json::Value::as_str),
                Some("alert_fired" | "alert_resolved")
            )
        })
        .collect();
    if !alerts.is_empty() {
        writeln!(out, "\nalerts ({} transition(s)):", alerts.len()).unwrap();
        for e in alerts {
            let t = e.get("t_ns").and_then(qvisor_sim::json::Value::as_u64);
            let kind = e
                .get("kind")
                .and_then(qvisor_sim::json::Value::as_str)
                .unwrap_or("?");
            let fields = e
                .get("fields")
                .map(qvisor_sim::json::Value::to_compact)
                .unwrap_or_default();
            writeln!(out, "  t={}ns {kind} {fields}", t.unwrap_or(0)).unwrap();
        }
    }
    Ok(out)
}

/// Render one line of a daemon telemetry stream. `Ok(None)` means the
/// stream is over; non-snapshot lines render as nothing.
fn render_stream_line(line: &str) -> Result<Option<String>, CliError> {
    use qvisor_sim::json::Value;
    let v = Value::parse(line)
        .map_err(|e| CliError::Telemetry(format!("bad stream line: {}", e.msg)))?;
    match v.get("type").and_then(Value::as_str) {
        Some("stream_end") => Ok(None),
        Some("telemetry_snapshot") => {
            let mut jsonl = String::new();
            for record in v.get("records").and_then(Value::as_array).unwrap_or(&[]) {
                jsonl.push_str(&record.to_compact());
                jsonl.push('\n');
            }
            let version = v.get("version").and_then(Value::as_u64).unwrap_or(0);
            let table = if jsonl.is_empty() {
                "no telemetry records in snapshot\n".to_string()
            } else {
                render_monitor_export(&jsonl)?
            };
            Ok(Some(format!("== snapshot version {version} ==\n{table}")))
        }
        _ => Ok(Some(String::new())),
    }
}

/// Consume a subscribed telemetry stream, writing one health table per
/// snapshot. Split from the TCP plumbing so it is testable on any reader.
fn monitor_stream(
    reader: impl std::io::BufRead,
    out: &mut impl std::io::Write,
) -> Result<(), CliError> {
    for line in reader.lines() {
        let line = line.map_err(|e| CliError::Telemetry(format!("stream read failed: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        match render_stream_line(&line)? {
            Some(text) => {
                out.write_all(text.as_bytes())
                    .map_err(|e| CliError::Telemetry(format!("cannot write output: {e}")))?;
            }
            None => return Ok(()),
        }
    }
    Ok(())
}

/// Live half of `qvisor monitor`: subscribe to a daemon's telemetry
/// stream and render each snapshot as it arrives.
fn cmd_monitor_live(addr: &str) -> Result<String, CliError> {
    use std::io::Write as _;
    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| CliError::Telemetry(format!("cannot connect to {addr}: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| CliError::Telemetry(format!("cannot clone connection: {e}")))?;
    writeln!(writer, r#"{{"op":"subscribe-telemetry"}}"#)
        .map_err(|e| CliError::Telemetry(format!("cannot subscribe: {e}")))?;
    let reader = std::io::BufReader::new(stream);
    let stdout = std::io::stdout();
    monitor_stream(reader, &mut stdout.lock())?;
    Ok("monitor: stream ended\n".to_string())
}

/// `qvisor telemetry report`: render a JSONL telemetry export (as written
/// by `Telemetry::export_jsonl` or the bench binaries' `--telemetry` flag)
/// as per-tenant and per-queue summary tables.
pub fn cmd_telemetry_report(jsonl: &str) -> Result<String, CliError> {
    qvisor_telemetry::report::render(jsonl).map_err(CliError::Telemetry)
}

/// `qvisor trace report`: render a trace snapshot (as written by
/// `TraceData::to_jsonl` or the bench binaries' `--trace` flag) as a
/// latency breakdown with an inversion timeline.
pub fn cmd_trace_report(jsonl: &str) -> Result<String, CliError> {
    let data = qvisor_telemetry::TraceData::parse(jsonl).map_err(CliError::Telemetry)?;
    Ok(qvisor_telemetry::trace::render_report(&data))
}

/// `qvisor trace export`: convert a trace snapshot to Chrome trace-event
/// JSON, loadable in Perfetto (<https://ui.perfetto.dev>) or
/// `chrome://tracing`.
pub fn cmd_trace_export(jsonl: &str) -> Result<String, CliError> {
    let data = qvisor_telemetry::TraceData::parse(jsonl).map_err(CliError::Telemetry)?;
    Ok(qvisor_telemetry::perfetto::export_chrome(&data))
}

/// `qvisor example`: a starter configuration.
pub fn example_config() -> String {
    DeploymentConfig::from_json(
        r#"{
        "tenants": [
            { "id": 1, "name": "T1", "algorithm": "pFabric",
              "rank_min": 0, "rank_max": 100000, "levels": 512 },
            { "id": 2, "name": "T2", "algorithm": "EDF",
              "rank_min": 0, "rank_max": 10000, "levels": 64 },
            { "id": 3, "name": "T3", "algorithm": "FQ",
              "rank_min": 0, "rank_max": 1000, "levels": 32 }
        ],
        "policy": "T1 >> T2 + T3"
    }"#,
    )
    .expect("example config is valid")
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_json() -> String {
        example_config()
    }

    #[test]
    fn example_is_valid_and_synthesizes() {
        let out = cmd_synth(&example_json()).unwrap();
        assert!(out.contains("policy      : T1 >> T2 + T3"));
        assert!(out.contains("ISOLATED"));
        assert!(out.contains("normalize"));
    }

    #[test]
    fn analyze_reports_ok() {
        let out = cmd_analyze(&example_json()).unwrap();
        assert!(out.contains("RESULT: ok"));
    }

    #[test]
    fn compile_reports_concessions_on_tiny_hardware() {
        let out = cmd_compile(&example_json(), 8, 8).unwrap();
        assert!(out.contains("concessions :"));
        assert!(out.contains("quantization"));
        assert!(out.contains("all hold"));
    }

    #[test]
    fn compile_faithful_on_big_hardware() {
        let out = cmd_compile(&example_json(), 32, 32).unwrap();
        assert!(out.contains("none (faithful)"));
    }

    #[test]
    fn bad_json_is_a_clean_error() {
        let err = cmd_synth("{nope").unwrap_err();
        assert!(matches!(err, CliError::Qvisor(QvisorError::Parse { .. })));
        assert!(err.to_string().contains("configuration JSON"));
    }

    #[test]
    fn help_lists_every_subcommand() {
        for invocation in ["help", "--help", "-h"] {
            let out = run(&[invocation.to_string()]).unwrap();
            for cmd in [
                "synth",
                "analyze",
                "compile",
                "check",
                "run",
                "sweep",
                "serve",
                "monitor",
                "fuzz",
                "telemetry",
                "trace",
                "example",
                "help",
            ] {
                assert!(
                    out.contains(&format!("qvisor {cmd}")),
                    "{invocation}: {cmd}"
                );
            }
        }
        // `help` succeeds, unlike a bare or unknown invocation.
        assert!(run(&[]).is_err());
        assert!(run(&["frobnicate".to_string()]).is_err());
    }

    #[test]
    fn serve_flags_parse() {
        let opts = parse_serve_flags(&[]).unwrap();
        assert_eq!(opts.listen, "127.0.0.1:4733");
        assert!(!opts.deny_warnings);
        let opts = parse_serve_flags(&[
            "--listen".to_string(),
            "127.0.0.1:0".to_string(),
            "--deny-warnings".to_string(),
        ])
        .unwrap();
        assert_eq!(opts.listen, "127.0.0.1:0");
        assert!(opts.deny_warnings);
        assert!(parse_serve_flags(&["--port".to_string()]).is_err());
        assert!(parse_serve_flags(&["--listen".to_string()]).is_err());
    }

    #[test]
    fn run_dispatch_and_usage() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(matches!(run(&args(&[])), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["bogus"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&args(&["synth"])), Err(CliError::Usage(_))));
        let example = run(&args(&["example"])).unwrap();
        assert!(example.contains("\"policy\""));
        // File-based path: write a temp config and run synth on it.
        let path = std::env::temp_dir().join("qvisor_cli_test_config.json");
        std::fs::write(&path, example).unwrap();
        let out = run(&args(&["synth", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("all hold"));
        let out = run(&args(&[
            "compile",
            path.to_str().unwrap(),
            "--queues",
            "4",
            "--rank-bits",
            "10",
        ]))
        .unwrap();
        assert!(out.contains("target      : 4 queues, 10-bit ranks"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn telemetry_report_round_trips() {
        let t = qvisor_telemetry::Telemetry::enabled();
        t.counter("net_sent_pkts", &[("tenant", "T1")]).add(42);
        t.counter(
            "sched_dropped_pkts",
            &[("queue", "n0.p0"), ("kind", "pifo")],
        )
        .add(3);
        let out = cmd_telemetry_report(&t.export_jsonl()).unwrap();
        assert!(out.contains("per-tenant"));
        assert!(out.contains("T1"));
        assert!(out.contains("per-queue"));
        assert!(out.contains("n0.p0"));
        // Dispatch through run() with a temp file.
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let path = std::env::temp_dir().join("qvisor_cli_test_telemetry.jsonl");
        std::fs::write(&path, t.export_jsonl()).unwrap();
        let out = run(&args(&["telemetry", "report", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("telemetry report"));
        std::fs::remove_file(&path).ok();
        // Usage and parse errors are clean.
        assert!(matches!(
            run(&args(&["telemetry"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_telemetry_report("{not json"),
            Err(CliError::Telemetry(_))
        ));
    }

    #[test]
    fn trace_report_and_export_round_trip() {
        use qvisor_telemetry::{TraceConfig, TraceKind, TraceRecord, Tracer};
        let tracer = Tracer::enabled(TraceConfig::default());
        let q = tracer.intern("n0.p0");
        let t = |us: u64| qvisor_sim::Nanos::from_micros(us);
        tracer.record(TraceRecord::new(
            t(1),
            7,
            0,
            1,
            TraceKind::Enqueue { rank: 5 },
        ));
        tracer.record(
            TraceRecord::new(
                t(3),
                7,
                0,
                1,
                TraceKind::Dequeue {
                    rank: 5,
                    wait_ns: 2_000,
                },
            )
            .at_label(q),
        );
        tracer.record(TraceRecord::new(
            t(9),
            7,
            0,
            1,
            TraceKind::Deliver { latency_ns: 8_000 },
        ));
        let jsonl = tracer.snapshot().to_jsonl();
        let report = cmd_trace_report(&jsonl).unwrap();
        assert!(report.contains("trace report"));
        assert!(report.contains("queueing delay"));
        let chrome = cmd_trace_export(&jsonl).unwrap();
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"dequeue\""));
        // Dispatch through run() with a temp file.
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let path = std::env::temp_dir().join("qvisor_cli_test_trace.jsonl");
        std::fs::write(&path, &jsonl).unwrap();
        let out = run(&args(&["trace", "report", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("trace report"));
        let out = run(&args(&["trace", "export", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("\"traceEvents\""));
        std::fs::remove_file(&path).ok();
        // Usage and parse errors are clean.
        assert!(matches!(run(&args(&["trace"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["trace", "bogus"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            cmd_trace_report("{not json"),
            Err(CliError::Telemetry(_))
        ));
    }

    const SCENARIO: &str = r#"{
        "name": "cli-test",
        "seed": 1,
        "topology": { "dumbbell": { "pairs": 1, "edge_bps": 1000000000,
                                    "bottleneck_bps": 1000000000, "delay_ns": 1000 } },
        "sim": { "horizon": { "at_ns": 10000000 } },
        "workloads": [ { "flows": { "list": [
            { "tenant": 1, "src_host": 0, "dst_host": 1, "size": 100000, "start_ns": 0 }
        ] } } ]
    }"#;

    #[test]
    fn run_executes_a_scenario() {
        let out = cmd_run(SCENARIO, &RunOpts::default()).unwrap();
        assert!(out.contains("\"end_time_ns\""));
        assert!(out.contains("\"fct\""));
        // Bad field paths come back as named-field errors, not panics.
        let err = cmd_run(
            r#"{"topology": {"dumbbell": {"pairs": 0}}}"#,
            &RunOpts::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Scenario(_)));
        assert!(err.to_string().contains("dumbbell"));
    }

    #[test]
    fn run_writes_telemetry_and_trace_files() {
        let dir = std::env::temp_dir();
        let tpath = dir.join("qvisor_cli_test_run.telemetry.jsonl");
        let rpath = dir.join("qvisor_cli_test_run.trace.jsonl");
        let opts = RunOpts {
            telemetry: Some(tpath.to_str().unwrap().to_string()),
            trace: Some(rpath.to_str().unwrap().to_string()),
            ..RunOpts::default()
        };
        cmd_run(SCENARIO, &opts).unwrap();
        let telemetry = std::fs::read_to_string(&tpath).unwrap();
        assert!(telemetry.contains("net_sent_pkts"));
        let trace = std::fs::read_to_string(&rpath).unwrap();
        assert!(trace.contains("\"deliver\"") || trace.contains("\"enqueue\""));
        std::fs::remove_file(&tpath).ok();
        std::fs::remove_file(&rpath).ok();
        // A bad output path reports the path instead of panicking.
        let opts = RunOpts {
            telemetry: Some("/nonexistent_dir_qvisor/deep/t.jsonl".into()),
            ..RunOpts::default()
        };
        let err = cmd_run(SCENARIO, &opts).unwrap_err();
        assert!(err
            .to_string()
            .contains("/nonexistent_dir_qvisor/deep/t.jsonl"));
    }

    #[test]
    fn sweep_is_deterministic_across_jobs() {
        let sweep = format!(
            r#"{{ "base": {SCENARIO}, "axes": [ {{ "path": "seed", "values": [1, 2, 3] }} ] }}"#
        );
        let one = cmd_sweep(&sweep, &SweepOpts::default()).unwrap();
        let four = cmd_sweep(
            &sweep,
            &SweepOpts {
                jobs: 4,
                ..SweepOpts::default()
            },
        )
        .unwrap();
        assert_eq!(one, four);
        assert!(one.contains("\"label\": \"seed=1\""));
        assert!(one.contains("\"label\": \"seed=3\""));
        // Unknown axis paths are named in the error.
        let bad = format!(
            r#"{{ "base": {SCENARIO}, "axes": [ {{ "path": "nope.deep", "values": [1] }} ] }}"#
        );
        let err = cmd_sweep(&bad, &SweepOpts::default()).unwrap_err();
        assert!(matches!(err, CliError::Scenario(_)));
    }

    #[test]
    fn run_and_sweep_dispatch_through_cli() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let dir = std::env::temp_dir();
        let spath = dir.join("qvisor_cli_test_scenario.json");
        std::fs::write(&spath, SCENARIO).unwrap();
        let out = run(&args(&["run", spath.to_str().unwrap()])).unwrap();
        assert!(out.contains("\"end_time_ns\""));
        let wpath = dir.join("qvisor_cli_test_sweep.json");
        std::fs::write(
            &wpath,
            format!(
                r#"{{ "base": {SCENARIO}, "axes": [ {{ "path": "seed", "values": [1, 2] }} ] }}"#
            ),
        )
        .unwrap();
        let out = run(&args(&["sweep", wpath.to_str().unwrap(), "--jobs", "2"])).unwrap();
        assert!(out.contains("\"points\""));
        std::fs::remove_file(&spath).ok();
        std::fs::remove_file(&wpath).ok();
        assert!(matches!(run(&args(&["run"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["sweep", "x.json", "--jobs", "0"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_run_flags(&args(&["--wat"])),
            Err(CliError::Usage(_))
        ));
    }

    /// A scenario carrying a QVISOR deployment (two tenants, strict policy).
    const QSCENARIO: &str = r#"{
        "name": "cli-check-test",
        "seed": 1,
        "topology": { "dumbbell": { "pairs": 1, "edge_bps": 1000000000,
                                    "bottleneck_bps": 1000000000, "delay_ns": 1000 } },
        "sim": { "horizon": { "at_ns": 10000000 } },
        "qvisor": {
            "tenants": [
                { "id": 1, "name": "pFabric", "algorithm": "pFabric",
                  "rank_min": 0, "rank_max": 2000, "levels": 512 },
                { "id": 2, "name": "EDF", "algorithm": "EDF",
                  "rank_min": 0, "rank_max": 2, "levels": 64 }
            ],
            "policy": "EDF >> pFabric"
        },
        "workloads": [ { "flows": { "list": [
            { "tenant": 1, "src_host": 0, "dst_host": 1, "size": 100000, "start_ns": 0 }
        ] } } ]
    }"#;

    #[test]
    fn check_passes_the_example_config() {
        let out = cmd_check(&example_json(), &CheckOpts::default()).unwrap();
        assert!(out.contains("QVISOR policy verification"));
        assert!(out.contains("check: OK"));
        // Quantization findings are info-level: deny-warnings still passes.
        let strict = CheckOpts {
            deny_warnings: true,
            jsonl: false,
        };
        assert!(cmd_check(&example_json(), &strict).is_ok());
    }

    #[test]
    fn check_refutes_a_saturating_config_with_witness() {
        // first_rank = u64::MAX - 5 pins every band at the rank ceiling.
        let bad = r#"{
            "tenants": [
                { "id": 1, "name": "T1", "algorithm": "x",
                  "rank_min": 0, "rank_max": 1000 },
                { "id": 2, "name": "T2", "algorithm": "y",
                  "rank_min": 0, "rank_max": 1000 }
            ],
            "policy": "T1 >> T2",
            "synth": { "first_rank": 18446744073709551610 }
        }"#;
        let err = cmd_check(bad, &CheckOpts::default()).unwrap_err();
        assert!(matches!(err, CliError::Check { errors: true, .. }));
        assert_eq!(err.exit_code(), 2);
        let text = err.to_string();
        assert!(text.contains("QV-OVERFLOW"));
        assert!(text.contains("witness"));
        assert!(text.contains("verification FAILED"));
    }

    #[test]
    fn check_handles_scenario_and_sweep_documents() {
        // No qvisor block: trivially clean.
        let out = cmd_check(SCENARIO, &CheckOpts::default()).unwrap();
        assert!(out.contains("check: OK"));
        // A scenario with a deployment verifies every tenant.
        let out = cmd_check(QSCENARIO, &CheckOpts::default()).unwrap();
        assert!(out.contains("qvisor.tenants.0"));
        assert!(out.contains("check: OK"));
        // A sweep checks every grid point, labeled.
        let sweep = format!(
            r#"{{ "base": {QSCENARIO}, "axes": [ {{ "path": "seed", "values": [1, 2] }} ] }}"#
        );
        let out = cmd_check(&sweep, &CheckOpts::default()).unwrap();
        assert!(out.contains("== seed=1 =="));
        assert!(out.contains("== seed=2 =="));
        assert!(out.contains("check: OK"));
    }

    #[test]
    fn check_jsonl_roots_sweep_paths_under_base() {
        let sweep = format!(r#"{{ "base": {QSCENARIO}, "axes": [] }}"#);
        let opts = CheckOpts {
            deny_warnings: false,
            jsonl: true,
        };
        let out = cmd_check(&sweep, &opts).unwrap();
        for line in out.lines() {
            qvisor_sim::json::Value::parse(line).expect("every line is JSON");
        }
        assert!(out.contains("base.qvisor.tenants.0"));
        assert!(out.contains("\"type\":\"verify_summary\""));
        assert!(out.contains("\"label\":\"point 0\""));
    }

    #[test]
    fn check_dispatches_through_cli_with_flags() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(matches!(run(&args(&["check"])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["check", "x.json", "--wat"])),
            Err(CliError::Usage(_))
        ));
        let path = std::env::temp_dir().join("qvisor_cli_test_check.json");
        std::fs::write(&path, example_json()).unwrap();
        let out = run(&args(&["check", path.to_str().unwrap(), "--deny-warnings"])).unwrap();
        assert!(out.contains("check: OK"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_refuses_a_refuted_scenario() {
        // An unscheduled tenant is warning-level: fine by default, fatal
        // under --deny-warnings.
        let warned = QSCENARIO.replace("\"policy\": \"EDF >> pFabric\"", "\"policy\": \"EDF\"");
        let spec = ScenarioSpec::from_json(&warned).unwrap();
        let banner = verify_banner(&Engine::new(), &spec).unwrap();
        assert!(banner.contains("verify: warning QV-UNSCHEDULED"));
        // The warning goes to stderr; stdout stays pure report JSON.
        let out = cmd_run(&warned, &RunOpts::default()).unwrap();
        assert!(out.starts_with('{') && out.contains("\"end_time_ns\""));
        let strict = RunOpts {
            deny_warnings: true,
            ..RunOpts::default()
        };
        let err = cmd_run(&warned, &strict).unwrap_err();
        assert!(err.to_string().contains("QV-UNSCHEDULED"));
    }

    #[test]
    fn flag_validation() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(matches!(
            parse_compile_flags(&args(&["--queues"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_compile_flags(&args(&["--rank-bits", "64"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_compile_flags(&args(&["--wat"])),
            Err(CliError::Usage(_))
        ));
        let (q, b) = parse_compile_flags(&args(&[])).unwrap();
        assert_eq!((q, b), (8, 16));
    }

    #[test]
    fn fuzz_flags_parse_and_validate() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let opts = parse_fuzz_flags(&args(&[])).unwrap();
        assert_eq!(opts.seed, qvisor_fuzz::DEFAULT_SEED);
        assert_eq!(opts.cases, 1000);
        assert_eq!(opts.jobs, 1);
        assert!(opts.out.is_none());
        let opts = parse_fuzz_flags(&args(&[
            "--seed", "7", "--cases", "12", "--jobs", "3", "--out", "/tmp/x",
        ]))
        .unwrap();
        assert_eq!((opts.seed, opts.cases, opts.jobs), (7, 12, 3));
        assert_eq!(opts.out.as_deref(), Some("/tmp/x"));
        assert!(matches!(
            parse_fuzz_flags(&args(&["--cases", "0"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_fuzz_flags(&args(&["--jobs", "0"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_fuzz_flags(&args(&["--wat"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn fuzz_runs_a_small_conformant_campaign_through_the_cli() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let out = run(&args(&["fuzz", "--cases", "8", "--jobs", "2"])).unwrap();
        assert!(out.contains("qvisor fuzz campaign"), "{out}");
        assert!(out.contains("cases : 8"), "{out}");
        assert!(out.contains("result: AGREE"), "{out}");
    }

    /// A congested scenario with a declared drop-rate alert: two 900 Mb/s
    /// tenants share a 1 Gb/s bottleneck with a tiny buffer.
    const MONITOR_SCENARIO: &str = r#"{
        "name": "cli-monitor-test",
        "seed": 7,
        "topology": { "dumbbell": { "pairs": 2, "edge_bps": 10000000000,
                                    "bottleneck_bps": 1000000000, "delay_ns": 1000 } },
        "sim": { "buffer_bytes": 9000, "horizon": { "at_ns": 20000000 } },
        "scheduler": { "fifo": {} },
        "workloads": [ { "cbr": { "list": [
            { "tenant": 1, "src_host": 0, "dst_host": 2, "rate_bps": 900000000,
              "pkt_size": 1500, "start_ns": 0, "stop": { "at_ns": 15000000 },
              "deadline_offset_ns": 1000000 },
            { "tenant": 2, "src_host": 1, "dst_host": 3, "rate_bps": 900000000,
              "pkt_size": 1500, "start_ns": 0, "stop": { "at_ns": 15000000 },
              "deadline_offset_ns": 1000000 }
        ] } } ],
        "alerts": [ { "metric": "drop_rate", "tenant": 2,
                      "window_ns": 2000000, "threshold": 0.05 } ]
    }"#;

    #[test]
    fn run_monitor_export_renders_offline_health_table() {
        let dir = std::env::temp_dir();
        let mpath = dir.join("qvisor_cli_test_run.monitor.jsonl");
        let opts = RunOpts {
            monitor: Some(mpath.to_str().unwrap().to_string()),
            ..RunOpts::default()
        };
        cmd_run(MONITOR_SCENARIO, &opts).unwrap();
        let export = std::fs::read_to_string(&mpath).unwrap();
        assert!(export.contains("slo_drop_rate_ppm"), "{export}");
        assert!(export.contains("\"kind\":\"alert_fired\""), "{export}");
        // Offline render via the subcommand dispatch.
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let out = run(&args(&["monitor", mpath.to_str().unwrap()])).unwrap();
        assert!(out.contains("T1"), "{out}");
        assert!(out.contains("T2"), "{out}");
        assert!(out.contains("slo_drop_rate_ppm"), "{out}");
        assert!(out.contains("alert_fired"), "{out}");
        std::fs::remove_file(&mpath).ok();
        assert!(matches!(run(&args(&["monitor"])), Err(CliError::Usage(_))));
    }

    #[test]
    fn monitor_stream_renders_snapshots_until_stream_end() {
        let lines = concat!(
            r#"{"type":"telemetry_snapshot","version":3,"records":[{"type":"counter","name":"net_sent_pkts","labels":{"tenant":"T1"},"value":5}]}"#,
            "\n",
            r#"{"type":"stream_end"}"#,
            "\n",
            r#"{"type":"telemetry_snapshot","version":4,"records":[]}"#,
            "\n",
        );
        let mut out = Vec::new();
        monitor_stream(std::io::Cursor::new(lines), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("== snapshot version 3 =="), "{text}");
        assert!(text.contains("net_sent_pkts"), "{text}");
        // Nothing after stream_end is rendered.
        assert!(!text.contains("version 4"), "{text}");
        // Empty snapshots render a note instead of failing.
        let mut out = Vec::new();
        monitor_stream(
            std::io::Cursor::new(r#"{"type":"telemetry_snapshot","version":9,"records":[]}"#),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("no telemetry records"), "{text}");
        // Garbage is a clean error.
        let mut out = Vec::new();
        let err = monitor_stream(std::io::Cursor::new("{nope"), &mut out).unwrap_err();
        assert!(matches!(err, CliError::Telemetry(_)));
    }

    #[test]
    fn monitor_live_connects_to_a_daemon() {
        let config = DeploymentConfig::from_json(&example_json()).unwrap();
        let daemon = qvisor_serve::Daemon::start(
            config,
            qvisor_serve::ServeOptions {
                listen: "127.0.0.1:0".to_string(),
                deny_warnings: false,
            },
        )
        .unwrap();
        let addr = daemon.local_addr().to_string();
        let handle = std::thread::spawn(move || cmd_monitor(&addr));
        // Trigger one snapshot publish, then stop the daemon (which
        // publishes the stream-end marker the monitor exits on).
        use std::io::{BufRead as _, BufReader, Write as _};
        let stream = std::net::TcpStream::connect(daemon.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        writeln!(
            writer,
            r#"{{"op":"submit-policy","tenant":{{"id":1,"name":"T1","algorithm":"pFabric","rank_min":0,"rank_max":100000,"levels":512}}}}"#
        )
        .unwrap();
        reader.read_line(&mut line).unwrap();
        writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
        daemon.wait();
        let out = handle.join().unwrap().unwrap();
        assert!(out.contains("monitor: stream ended"), "{out}");
    }

    #[test]
    fn check_replays_a_corpus_document() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus/overflow.json");
        let out = run(&args(&["check", path])).unwrap();
        assert!(
            out.contains("fuzz replay: recorded verdict 'errors'"),
            "{out}"
        );
        assert!(out.contains("check: OK"), "{out}");
        // JSONL rendering carries a structured replay line after the diags.
        let out = run(&args(&["check", path, "--jsonl"])).unwrap();
        assert!(out.contains("\"type\":\"fuzz_replay\""), "{out}");
        // A drifted expectation is an error-severity gate failure.
        let text = std::fs::read_to_string(path).unwrap();
        let drifted = text.replace("\"verdict\": \"errors\"", "\"verdict\": \"clean\"");
        assert_ne!(drifted, text);
        let tmp = std::env::temp_dir().join("qvisor_cli_test_drifted_corpus.json");
        std::fs::write(&tmp, drifted).unwrap();
        let err = run(&args(&["check", tmp.to_str().unwrap()])).unwrap_err();
        assert!(matches!(err, CliError::Check { errors: true, .. }), "{err}");
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("verdict drifted"), "{err}");
        std::fs::remove_file(&tmp).ok();
    }
}
