//! The QVISOR synthesizer (§3.2): turns per-tenant specs plus the
//! operator's policy into a *joint scheduling function* — one rank
//! transformation chain per tenant.
//!
//! Synthesis is purely structural:
//!
//! 1. Every tenant is **normalized**: its declared rank range is quantized
//!    onto `Q` discrete levels, making tenants comparable (§2, Idea 1).
//! 2. `+` share groups **interleave** their members: with total weight `W`,
//!    a member of weight `w` owning slot offsets `[o, o+w)` maps level `q`
//!    to `(q/w)·W + o + q%w`. Unit weights reduce to `q·W + o` — exactly
//!    the paper's Fig. 3 numbers.
//! 3. `>` preference chains place groups in **overlapping bands** offset by
//!    a partial-band bias: favoured groups win where they overlap, but no
//!    isolation is created (best-effort priority).
//! 4. `>>` strict levels are stacked in **disjoint bands**; by construction
//!    every rank of a higher band is smaller than every rank of a lower
//!    one, which the static analyzer re-verifies from the chains.

use crate::error::{QvisorError, Result};
use crate::policy::Policy;
use crate::spec::{SynthConfig, TenantSpec};
use crate::transform::{RankTransform, TransformChain};
use qvisor_ranking::RankRange;
use qvisor_sim::{Rank, TenantId};
use std::collections::{BTreeMap, HashMap};

/// Where one tenant landed inside the joint rank space.
#[derive(Clone, Debug)]
pub struct MemberLayout {
    /// The tenant.
    pub tenant: TenantId,
    /// Share weight within its group.
    pub weight: u32,
    /// Quantization levels after weighting (`Q_base * weight`).
    pub levels: u64,
    /// First owned slot offset within the group's stride cycle.
    pub slot_offset: u64,
    /// Final output range of the tenant's chain (absolute ranks).
    pub output: RankRange,
}

/// A `+` share group's placement.
#[derive(Clone, Debug)]
pub struct GroupLayout {
    /// Offset of this group's band relative to the level base (the
    /// best-effort preference bias).
    pub bias: u64,
    /// Band width in ranks.
    pub width: u64,
    /// Stride cycle length (total member weight).
    pub stride: u64,
    /// Member placements.
    pub members: Vec<MemberLayout>,
}

/// A `>>` strict level's placement.
#[derive(Clone, Debug)]
pub struct LevelLayout {
    /// Absolute base rank of the level's band.
    pub base: Rank,
    /// Band width in ranks (including preference biases).
    pub width: u64,
    /// Preference-ordered groups.
    pub groups: Vec<GroupLayout>,
}

/// The synthesized joint scheduling function.
#[derive(Clone, Debug)]
pub struct JointPolicy {
    /// Per-tenant rank transformation chains (the deployable artifact).
    /// Ordered by tenant id so iteration is deterministic (the repo's
    /// determinism lint forbids hash-order iteration in sim crates).
    chains: BTreeMap<TenantId, TransformChain>,
    /// Structural description of the rank space (for analysis, backends,
    /// and reports).
    pub layout: Vec<LevelLayout>,
    /// The operator policy this was synthesized from.
    pub policy: Policy,
    /// The tenant specs used.
    pub specs: Vec<TenantSpec>,
    /// Configuration used.
    pub config: SynthConfig,
}

impl JointPolicy {
    /// The transformation chain for `tenant`, if it appears in the policy.
    pub fn chain(&self, tenant: TenantId) -> Option<&TransformChain> {
        self.chains.get(&tenant)
    }

    /// All (tenant, chain) pairs.
    pub fn chains(&self) -> impl Iterator<Item = (TenantId, &TransformChain)> {
        self.chains.iter().map(|(&t, c)| (t, c))
    }

    /// The full span of ranks the joint policy can emit.
    pub fn output_span(&self) -> RankRange {
        let first = self.config.first_rank;
        let last = self
            .layout
            .last()
            .map(|l| l.base.saturating_add(l.width.saturating_sub(1)))
            .unwrap_or(first);
        RankRange::new(first, last.max(first))
    }

    /// Layout member entry for `tenant`.
    pub fn member(&self, tenant: TenantId) -> Option<&MemberLayout> {
        self.layout
            .iter()
            .flat_map(|l| &l.groups)
            .flat_map(|g| &g.members)
            .find(|m| m.tenant == tenant)
    }
}

/// Synthesize a [`JointPolicy`] from tenant specs and an operator policy.
///
/// Fails when the policy names a tenant with no spec, repeats a tenant, or
/// the config is degenerate. Specs not referenced by the policy are ignored
/// (they will be reported by the analyzer as unscheduled).
pub fn synthesize(
    specs: &[TenantSpec],
    policy: &Policy,
    config: SynthConfig,
) -> Result<JointPolicy> {
    if config.pref_bias_divisor == 0 {
        return Err(QvisorError::Synthesis(
            "pref_bias_divisor must be positive".into(),
        ));
    }
    if config.default_levels == 0 {
        return Err(QvisorError::Synthesis(
            "default_levels must be positive".into(),
        ));
    }
    let by_name: HashMap<&str, &TenantSpec> = specs.iter().map(|s| (s.name.as_str(), s)).collect();
    if by_name.len() != specs.len() {
        return Err(QvisorError::Synthesis(
            "duplicate tenant names in specs".into(),
        ));
    }

    // Resolve and validate references.
    let mut seen: Vec<&str> = Vec::new();
    for name in policy.tenant_names() {
        if seen.contains(&name) {
            return Err(QvisorError::DuplicateTenant(name.to_string()));
        }
        if !by_name.contains_key(name) {
            return Err(QvisorError::UnknownTenant(name.to_string()));
        }
        seen.push(name);
    }

    let mut chains = BTreeMap::new();
    let mut layout = Vec::with_capacity(policy.levels.len());
    let mut level_base = config.first_rank;

    for level in &policy.levels {
        // First pass: per-group geometry.
        struct GroupGeom<'a> {
            stride: u64,
            q_base: u64,
            width: u64,
            members: Vec<(&'a TenantSpec, u32, u64)>, // (spec, weight, slot offset)
        }
        let mut geoms = Vec::with_capacity(level.groups.len());
        for group in &level.groups {
            let stride: u64 = group.members.iter().map(|m| m.weight as u64).sum();
            let q_base = group
                .members
                .iter()
                .map(|m| by_name[m.name.as_str()].effective_levels(config.default_levels))
                .max()
                .expect("parser guarantees non-empty groups");
            let mut slot = 0u64;
            let mut members = Vec::with_capacity(group.members.len());
            for m in &group.members {
                members.push((by_name[m.name.as_str()], m.weight, slot));
                slot += m.weight as u64;
            }
            // All band geometry saturates rather than wraps: an absurd
            // levels × stride product pins at `Rank::MAX` and the verifier
            // reports the overflow instead of the layout silently aliasing.
            geoms.push(GroupGeom {
                stride,
                q_base,
                width: q_base.saturating_mul(stride),
                members,
            });
        }

        // Preference biases accumulate: each group starts a fraction
        // (1/divisor) of the way into the *previous* group's band, so every
        // adjacent pair overlaps regardless of width asymmetry.
        let mut biases = Vec::with_capacity(geoms.len());
        let mut acc = 0u64;
        for geom in &geoms {
            biases.push(acc);
            acc = acc.saturating_add((geom.width.div_ceil(config.pref_bias_divisor)).max(1));
        }

        // Second pass: emit chains and layout.
        let mut groups_layout = Vec::with_capacity(geoms.len());
        let mut level_width = 0u64;
        for (k, geom) in geoms.iter().enumerate() {
            let bias = biases[k];
            let mut members_layout = Vec::with_capacity(geom.members.len());
            for &(spec, weight, slot_offset) in &geom.members {
                let levels = geom.q_base.saturating_mul(weight as u64);
                // Weighted members normalize over a range stretched by
                // their weight: their rank-per-input slope drops to 1/w of
                // an unweighted member's, which is what gives them w× the
                // service under virtual-clock (byte-counting) rank
                // functions while per-input granularity stays constant.
                let input = if weight > 1 {
                    RankRange::new(
                        spec.range.min,
                        spec.range
                            .min
                            .saturating_add((spec.range.width() - 1).saturating_mul(weight as u64)),
                    )
                } else {
                    spec.range
                };
                let mut chain = TransformChain::identity();
                chain.push(RankTransform::Normalize { input, levels });
                if geom.stride > 1 {
                    chain.push(RankTransform::Stride {
                        every: geom.stride,
                        width: weight as u64,
                        offset: slot_offset,
                    });
                }
                let shift = level_base.saturating_add(bias);
                if shift > 0 {
                    chain.push(RankTransform::Shift { offset: shift });
                }
                let output = chain.output_range(spec.range);
                members_layout.push(MemberLayout {
                    tenant: spec.id,
                    weight,
                    levels,
                    slot_offset,
                    output,
                });
                chains.insert(spec.id, chain);
            }
            level_width = level_width.max(bias.saturating_add(geom.width));
            groups_layout.push(GroupLayout {
                bias,
                width: geom.width,
                stride: geom.stride,
                members: members_layout,
            });
        }

        layout.push(LevelLayout {
            base: level_base,
            width: level_width,
            groups: groups_layout,
        });
        level_base = level_base.saturating_add(level_width);
    }

    Ok(JointPolicy {
        chains,
        layout,
        policy: policy.clone(),
        specs: specs.to_vec(),
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_specs() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new(TenantId(1), "T1", "pFabric", RankRange::new(7, 9)).with_levels(3),
            TenantSpec::new(TenantId(2), "T2", "EDF", RankRange::new(1, 3)).with_levels(2),
            TenantSpec::new(TenantId(3), "T3", "FQ", RankRange::new(3, 5)).with_levels(2),
        ]
    }

    fn fig3_config() -> SynthConfig {
        SynthConfig {
            first_rank: 1, // the paper's example starts output ranks at 1
            ..SynthConfig::default()
        }
    }

    #[test]
    fn fig3_exact_transformations() {
        // The paper's worked example, §3.3 / Fig. 3:
        //   policy  T1 >> T2 + T3
        //   T1 {7,8,9} -> {1,2,3}
        //   T2 {1,3}   -> {4,6}
        //   T3 {3,5}   -> {5,7}
        let policy = Policy::parse("T1 >> T2 + T3").unwrap();
        let joint = synthesize(&fig3_specs(), &policy, fig3_config()).unwrap();

        let t1 = joint.chain(TenantId(1)).unwrap();
        assert_eq!([7, 8, 9].map(|r| t1.apply(r)), [1, 2, 3]);
        let t2 = joint.chain(TenantId(2)).unwrap();
        assert_eq!([1, 3].map(|r| t2.apply(r)), [4, 6]);
        let t3 = joint.chain(TenantId(3)).unwrap();
        assert_eq!([3, 5].map(|r| t3.apply(r)), [5, 7]);
    }

    #[test]
    fn fig3_layout_structure() {
        let policy = Policy::parse("T1 >> T2 + T3").unwrap();
        let joint = synthesize(&fig3_specs(), &policy, fig3_config()).unwrap();
        assert_eq!(joint.layout.len(), 2);
        let top = &joint.layout[0];
        assert_eq!(top.base, 1);
        assert_eq!(top.width, 3);
        let bottom = &joint.layout[1];
        assert_eq!(bottom.base, 4);
        assert_eq!(bottom.width, 4);
        assert_eq!(bottom.groups[0].stride, 2);
        assert_eq!(joint.output_span(), RankRange::new(1, 7));
    }

    #[test]
    fn strict_levels_are_disjoint() {
        let specs = vec![
            TenantSpec::new(TenantId(1), "A", "pFabric", RankRange::new(0, 1_000_000)),
            TenantSpec::new(TenantId(2), "B", "EDF", RankRange::new(0, 10_000)),
            TenantSpec::new(TenantId(3), "C", "FQ", RankRange::new(0, 50)),
        ];
        let policy = Policy::parse("A >> B >> C").unwrap();
        let joint = synthesize(&specs, &policy, SynthConfig::default()).unwrap();
        let a = joint.member(TenantId(1)).unwrap().output;
        let b = joint.member(TenantId(2)).unwrap().output;
        let c = joint.member(TenantId(3)).unwrap().output;
        assert!(a.max < b.min, "A {a} must sit strictly above B {b}");
        assert!(b.max < c.min, "B {b} must sit strictly above C {c}");
    }

    #[test]
    fn share_group_members_interleave() {
        let specs = vec![
            TenantSpec::new(TenantId(1), "A", "x", RankRange::new(0, 100)).with_levels(4),
            TenantSpec::new(TenantId(2), "B", "y", RankRange::new(0, 100)).with_levels(4),
        ];
        let policy = Policy::parse("A + B").unwrap();
        let joint = synthesize(&specs, &policy, SynthConfig::default()).unwrap();
        let a = joint.chain(TenantId(1)).unwrap();
        let b = joint.chain(TenantId(2)).unwrap();
        // A gets even slots, B odd; neither dominates.
        let a_ranks: Vec<Rank> = [0, 33, 67, 100].iter().map(|&r| a.apply(r)).collect();
        let b_ranks: Vec<Rank> = [0, 33, 67, 100].iter().map(|&r| b.apply(r)).collect();
        assert_eq!(a_ranks, vec![0, 2, 4, 6]);
        assert_eq!(b_ranks, vec![1, 3, 5, 7]);
    }

    #[test]
    fn weighted_share_owns_more_slots() {
        let specs = vec![
            TenantSpec::new(TenantId(1), "A", "x", RankRange::new(0, 100)).with_levels(2),
            TenantSpec::new(TenantId(2), "B", "y", RankRange::new(0, 100)).with_levels(2),
        ];
        let policy = Policy::parse("A:2 + B").unwrap();
        let joint = synthesize(&specs, &policy, SynthConfig::default()).unwrap();
        let a = joint.member(TenantId(1)).unwrap();
        let b = joint.member(TenantId(2)).unwrap();
        assert_eq!(a.levels, 4, "weight 2 doubles quantization");
        assert_eq!(b.levels, 2);
        let ca = joint.chain(TenantId(1)).unwrap();
        let cb = joint.chain(TenantId(2)).unwrap();
        // A normalizes over a 2x-stretched range, so its rank-per-input
        // slope is half of B's: at full input A is only halfway up its
        // band while B has topped out.
        assert_eq!([0, 100, 201].map(|r| ca.apply(r)), [0, 3, 4]);
        assert_eq!([0, 100].map(|r| cb.apply(r)), [2, 5]);
        // Equal progress fraction -> A ranks no worse than B.
        for frac in [0u64, 25, 50, 75, 100] {
            assert!(ca.apply(frac) <= cb.apply(frac));
        }
    }

    #[test]
    fn preference_overlaps_but_biases() {
        let specs = vec![
            TenantSpec::new(TenantId(1), "A", "x", RankRange::new(0, 100)).with_levels(8),
            TenantSpec::new(TenantId(2), "B", "y", RankRange::new(0, 100)).with_levels(8),
        ];
        let policy = Policy::parse("A > B").unwrap();
        let joint = synthesize(&specs, &policy, SynthConfig::default()).unwrap();
        let a = joint.member(TenantId(1)).unwrap().output;
        let b = joint.member(TenantId(2)).unwrap().output;
        // Best-effort: bands overlap (no isolation)...
        assert!(a.overlaps(&b), "preference must not isolate: {a} vs {b}");
        // ...but A is biased ahead.
        assert!(a.min < b.min);
        assert!(a.max < b.max);
    }

    #[test]
    fn paper_grammar_example_synthesizes() {
        let specs: Vec<TenantSpec> = (1..=5)
            .map(|i| TenantSpec::new(TenantId(i), format!("T{i}"), "alg", RankRange::new(0, 1000)))
            .collect();
        let policy = Policy::parse("T1 >> T2 > T3 + T4 >> T5").unwrap();
        let joint = synthesize(&specs, &policy, SynthConfig::default()).unwrap();
        let out = |i: u16| joint.member(TenantId(i)).unwrap().output;
        // T1 strictly above everyone.
        for i in 2..=5 {
            assert!(out(1).max < out(i).min);
        }
        // T5 strictly below everyone.
        for i in 1..=4 {
            assert!(out(i).max < out(5).min);
        }
        // T2 preferred over the T3+T4 share group, overlapping.
        assert!(out(2).min < out(3).min);
        assert!(out(2).overlaps(&out(3)));
        // T3 and T4 interleave in the same band.
        assert!(out(3).overlaps(&out(4)));
    }

    #[test]
    fn unknown_tenant_rejected() {
        let policy = Policy::parse("T1 >> TX").unwrap();
        let err = synthesize(&fig3_specs(), &policy, SynthConfig::default()).unwrap_err();
        assert_eq!(err, QvisorError::UnknownTenant("TX".into()));
    }

    #[test]
    fn duplicate_tenant_rejected() {
        let policy = Policy::parse("T1 >> T1").unwrap();
        let err = synthesize(&fig3_specs(), &policy, SynthConfig::default()).unwrap_err();
        assert_eq!(err, QvisorError::DuplicateTenant("T1".into()));
    }

    #[test]
    fn duplicate_spec_names_rejected() {
        let mut specs = fig3_specs();
        specs.push(TenantSpec::new(
            TenantId(9),
            "T1",
            "dup",
            RankRange::new(0, 1),
        ));
        let policy = Policy::parse("T1").unwrap();
        assert!(matches!(
            synthesize(&specs, &policy, SynthConfig::default()),
            Err(QvisorError::Synthesis(_))
        ));
    }

    #[test]
    fn unused_specs_are_allowed() {
        let policy = Policy::parse("T1").unwrap();
        let joint = synthesize(&fig3_specs(), &policy, SynthConfig::default()).unwrap();
        assert!(joint.chain(TenantId(1)).is_some());
        assert!(joint.chain(TenantId(2)).is_none());
    }

    #[test]
    fn single_tenant_identity_band() {
        let specs = vec![TenantSpec::new(
            TenantId(1),
            "T1",
            "pFabric",
            RankRange::new(0, 7),
        )];
        let policy = Policy::parse("T1").unwrap();
        let joint = synthesize(&specs, &policy, SynthConfig::default()).unwrap();
        let chain = joint.chain(TenantId(1)).unwrap();
        // 8 levels over [0,7]: normalization is the identity, no stride, no
        // shift.
        for r in 0..=7 {
            assert_eq!(chain.apply(r), r);
        }
    }
}
