//! Flow-size distributions.
//!
//! The paper's evaluation runs a *data-mining* workload (the heavy-tailed
//! distribution from the pFabric paper, originally measured by VL2) against
//! CBR cross-traffic. We provide that CDF, the *web-search* (DCTCP) CDF,
//! and simple synthetic distributions. Empirical CDFs are sampled by
//! inverse transform with log-linear interpolation between knots, which
//! respects the orders-of-magnitude spread of flow sizes.

use qvisor_sim::SimRng;

/// A distribution over flow sizes in bytes.
pub trait FlowSizeDist {
    /// Draw one flow size.
    fn sample(&self, rng: &mut SimRng) -> u64;

    /// Analytical (or numerically integrated) mean, used to convert target
    /// load into a flow arrival rate.
    fn mean_bytes(&self) -> f64;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Every flow has the same size.
#[derive(Clone, Copy, Debug)]
pub struct FixedSize(pub u64);

impl FlowSizeDist for FixedSize {
    fn sample(&self, _rng: &mut SimRng) -> u64 {
        self.0
    }

    fn mean_bytes(&self) -> f64 {
        self.0 as f64
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Uniform over `[min, max]`.
#[derive(Clone, Copy, Debug)]
pub struct UniformSize {
    min: u64,
    max: u64,
}

impl UniformSize {
    /// Uniform flow sizes in `[min, max]` bytes.
    ///
    /// # Panics
    /// Panics if `min > max` or `min == 0`.
    pub fn new(min: u64, max: u64) -> UniformSize {
        assert!(min > 0 && min <= max, "need 0 < min <= max");
        UniformSize { min, max }
    }
}

impl FlowSizeDist for UniformSize {
    fn sample(&self, rng: &mut SimRng) -> u64 {
        self.min + rng.below(self.max - self.min + 1)
    }

    fn mean_bytes(&self) -> f64 {
        (self.min + self.max) as f64 / 2.0
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// An empirical CDF over flow sizes: knots of `(bytes, cumulative
/// probability)`, sampled by inverse transform, log-linear interpolation.
#[derive(Clone, Debug)]
pub struct EmpiricalCdf {
    /// `(size_bytes, cum_prob)`, strictly increasing in both coordinates,
    /// last knot has probability 1.0.
    knots: Vec<(u64, f64)>,
    mean: f64,
    name: &'static str,
    /// Global scale factor applied to sampled sizes (for CI-speed runs).
    scale_num: u64,
    scale_den: u64,
}

impl EmpiricalCdf {
    /// Build from knots.
    ///
    /// # Panics
    /// Panics if fewer than two knots, coordinates are not strictly
    /// increasing, probabilities leave `[0,1]`, or the last is not 1.0.
    pub fn new(knots: Vec<(u64, f64)>, name: &'static str) -> EmpiricalCdf {
        assert!(knots.len() >= 2, "need at least two knots");
        for w in knots.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must strictly increase");
            assert!(w[0].1 < w[1].1, "probabilities must strictly increase");
        }
        assert!(knots[0].1 >= 0.0);
        assert!(
            (knots.last().unwrap().1 - 1.0).abs() < 1e-12,
            "last knot must have probability 1.0"
        );
        let mean = Self::integrate_mean(&knots);
        EmpiricalCdf {
            knots,
            mean,
            name,
            scale_num: 1,
            scale_den: 1,
        }
    }

    /// Scale every sampled size by `num/den` (minimum 1 byte). Used to
    /// shrink heavy-tailed workloads for fast runs while preserving shape.
    pub fn scaled(mut self, num: u64, den: u64) -> EmpiricalCdf {
        assert!(num > 0 && den > 0);
        self.scale_num = num;
        self.scale_den = den;
        self.mean = self.mean * num as f64 / den as f64;
        self
    }

    fn integrate_mean(knots: &[(u64, f64)]) -> f64 {
        // Piecewise: within a segment sizes are log-linear in probability;
        // approximate the segment mean by the log-midpoint (adequate for
        // load conversion; documented in EXPERIMENTS.md).
        let mut mean = knots[0].1 * knots[0].0 as f64;
        for w in knots.windows(2) {
            let ((s0, p0), (s1, p1)) = (w[0], w[1]);
            let mid = ((s0 as f64).ln() * 0.5 + (s1 as f64).ln() * 0.5).exp();
            mean += (p1 - p0) * mid;
        }
        mean
    }

    /// The data-mining workload CDF (pFabric §5.1, measured by VL2): over
    /// half of the flows are tiny, but the vast majority of *bytes* come
    /// from multi-megabyte elephants. Knot values approximate the published
    /// curve.
    pub fn data_mining() -> EmpiricalCdf {
        EmpiricalCdf::new(
            vec![
                (100, 0.015),
                (300, 0.28),
                (1_000, 0.50),
                (2_000, 0.58),
                (10_000, 0.70),
                (100_000, 0.79),
                (1_000_000, 0.88),
                (10_000_000, 0.96),
                (30_000_000, 0.98),
                (100_000_000, 1.0),
            ],
            "data-mining",
        )
    }

    /// The web-search workload CDF (DCTCP): flows between ~6 KB and ~20 MB,
    /// milder tail than data-mining.
    pub fn web_search() -> EmpiricalCdf {
        EmpiricalCdf::new(
            vec![
                (6_000, 0.15),
                (13_000, 0.30),
                (19_000, 0.40),
                (33_000, 0.53),
                (53_000, 0.60),
                (133_000, 0.70),
                (667_000, 0.80),
                (1_333_000, 0.90),
                (6_667_000, 0.97),
                (20_000_000, 1.0),
            ],
            "web-search",
        )
    }

    fn inverse(&self, u: f64) -> u64 {
        let (first_size, first_p) = self.knots[0];
        if u <= first_p {
            return first_size;
        }
        for w in self.knots.windows(2) {
            let ((s0, p0), (s1, p1)) = (w[0], w[1]);
            if u <= p1 {
                let t = (u - p0) / (p1 - p0);
                let ln = (s0 as f64).ln() * (1.0 - t) + (s1 as f64).ln() * t;
                return ln.exp().round() as u64;
            }
        }
        self.knots.last().unwrap().0
    }
}

impl FlowSizeDist for EmpiricalCdf {
    fn sample(&self, rng: &mut SimRng) -> u64 {
        let raw = self.inverse(rng.uniform());
        ((raw as u128 * self.scale_num as u128 / self.scale_den as u128) as u64).max(1)
    }

    fn mean_bytes(&self) -> f64 {
        self.mean
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_uniform() {
        let mut rng = SimRng::seed_from(1);
        assert_eq!(FixedSize(500).sample(&mut rng), 500);
        assert_eq!(FixedSize(500).mean_bytes(), 500.0);
        let u = UniformSize::new(10, 20);
        for _ in 0..1000 {
            let s = u.sample(&mut rng);
            assert!((10..=20).contains(&s));
        }
        assert_eq!(u.mean_bytes(), 15.0);
    }

    #[test]
    fn empirical_sample_within_support() {
        let d = EmpiricalCdf::data_mining();
        let mut rng = SimRng::seed_from(2);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((1..=100_000_000).contains(&s));
        }
    }

    #[test]
    fn data_mining_is_heavy_tailed() {
        let d = EmpiricalCdf::data_mining();
        let mut rng = SimRng::seed_from(3);
        let n = 50_000;
        let samples: Vec<u64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let small = samples.iter().filter(|&&s| s <= 10_000).count() as f64 / n as f64;
        assert!(
            (0.6..0.8).contains(&small),
            "~70% of flows should be <= 10KB, got {small}"
        );
        // Bytes concentrate in the elephants.
        let total: u128 = samples.iter().map(|&s| s as u128).sum();
        let big: u128 = samples
            .iter()
            .filter(|&&s| s >= 1_000_000)
            .map(|&s| s as u128)
            .sum();
        assert!(
            big as f64 / total as f64 > 0.8,
            "elephants should carry most bytes"
        );
    }

    #[test]
    fn sample_mean_tracks_declared_mean() {
        let d = EmpiricalCdf::web_search();
        let mut rng = SimRng::seed_from(4);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum();
        let sample_mean = sum / n as f64;
        let declared = d.mean_bytes();
        let ratio = sample_mean / declared;
        assert!(
            (0.6..1.6).contains(&ratio),
            "sample mean {sample_mean:.0} vs declared {declared:.0}"
        );
    }

    #[test]
    fn scaling_shrinks_sizes_proportionally() {
        let d = EmpiricalCdf::data_mining();
        let scaled = EmpiricalCdf::data_mining().scaled(1, 10);
        assert!((scaled.mean_bytes() - d.mean_bytes() / 10.0).abs() < 1.0);
        let mut rng = SimRng::seed_from(5);
        let s = scaled.sample(&mut rng);
        assert!(s >= 1);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn rejects_non_monotone_knots() {
        let _ = EmpiricalCdf::new(vec![(100, 0.5), (100, 1.0)], "bad");
    }

    #[test]
    #[should_panic(expected = "probability 1.0")]
    fn rejects_incomplete_cdf() {
        let _ = EmpiricalCdf::new(vec![(100, 0.5), (200, 0.9)], "bad");
    }
}
