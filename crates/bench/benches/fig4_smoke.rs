//! Smoke-scale Fig. 4: one point per scheme at load 0.5 on the small
//! fabric. Criterion measures wall-clock per point; the *quality* numbers
//! (FCTs per scheme × load) come from the `fig4` binary — see
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use qvisor_bench::{run_point, Fig4Config, Scheme};

fn fig4_smoke(c: &mut Criterion) {
    let cfg = Fig4Config::smoke();
    let mut g = c.benchmark_group("fig4_smoke");
    g.sample_size(10);
    for scheme in Scheme::ALL {
        g.bench_function(format!("{scheme:?}_load0.5"), |b| {
            b.iter(|| {
                let p = run_point(scheme, 0.5, &cfg);
                assert!(p.completed > 0);
                p.events
            })
        });
    }
    g.finish();
}

criterion_group!(benches, fig4_smoke);
criterion_main!(benches);
