//! §3.4 in the network: one joint policy deployed on PIFO, strict-priority
//! banks (banded static and SP-PIFO), and FIFO, compared on the same
//! workload. FIFO ignores ranks entirely, so small pFabric flows must be
//! slowest there; the PIFO approximations should land in between.

use qvisor::core::{SynthConfig, TenantSpec, UnknownTenantAction};
use qvisor::netsim::{NewFlow, QvisorSetup, SchedulerKind, SimConfig, SimReport, Simulation};
use qvisor::ranking::{PFabric, RankRange};
use qvisor::sim::{gbps, Nanos, TenantId};
use qvisor::topology::Dumbbell;
use qvisor::transport::SizeBucket;

const T1: TenantId = TenantId(1);

fn run(scheduler: SchedulerKind) -> SimReport {
    let d = Dumbbell::build(2, gbps(1), gbps(1), Nanos::from_micros(1));
    let specs =
        vec![TenantSpec::new(T1, "T1", "pFabric", RankRange::new(0, 5_000)).with_levels(256)];
    let cfg = SimConfig {
        seed: 5,
        horizon: Nanos::from_millis(400),
        scheduler,
        qvisor: Some(QvisorSetup {
            specs,
            policy: "T1".into(),
            synth: SynthConfig::default(),
            unknown: UnknownTenantAction::BestEffort,
            scope: Default::default(),
            monitor: None,
        }),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(d.topology.clone(), cfg).unwrap();
    sim.register_rank_fn(T1, Box::new(PFabric::new(1_000, 5_000)));
    // One 5 MB elephant, then a stream of 20 KB mice arriving mid-transfer,
    // all over the same bottleneck (same destination).
    sim.add_flow(NewFlow::new(
        T1,
        d.senders[0],
        d.receivers[0],
        5_000_000,
        Nanos::ZERO,
    ));
    for i in 0..20u64 {
        sim.add_flow(NewFlow::new(
            T1,
            d.senders[1],
            d.receivers[0],
            20_000,
            Nanos::from_millis(2 + i),
        ));
    }
    sim.run()
}

fn small_fct(r: &SimReport) -> f64 {
    r.fct.mean_fct_ms(Some(T1), SizeBucket::SMALL).unwrap()
}

#[test]
fn fifo_is_worst_for_mice_pifo_best() {
    let pifo = run(SchedulerKind::Pifo);
    let fifo = run(SchedulerKind::Fifo);
    let sp = run(SchedulerKind::SpPifo { queues: 8 });
    let banded = run(SchedulerKind::StrictStatic {
        queues: 8,
        span: RankRange::new(0, 5_000),
    });

    let (p, f, s, b) = (
        small_fct(&pifo),
        small_fct(&fifo),
        small_fct(&sp),
        small_fct(&banded),
    );
    assert!(
        f > p * 2.0,
        "FIFO ({f:.3} ms) must be far worse than PIFO ({p:.3} ms) for mice"
    );
    assert!(
        s < f && b < f,
        "PIFO approximations (sp {s:.3}, banded {b:.3}) must beat FIFO ({f:.3})"
    );
    // Approximations shouldn't beat the exact PIFO by much (sanity).
    assert!(s > p * 0.5 && b > p * 0.5);
}

#[test]
fn every_backend_completes_the_workload() {
    for scheduler in [
        SchedulerKind::Pifo,
        SchedulerKind::Fifo,
        SchedulerKind::SpPifo { queues: 8 },
        SchedulerKind::StrictStatic {
            queues: 8,
            span: RankRange::new(0, 5_000),
        },
        SchedulerKind::Aifo {
            window: 64,
            burst: 0.1,
        },
    ] {
        let r = run(scheduler);
        assert_eq!(r.incomplete_flows, 0, "incomplete under {scheduler:?}");
        assert_eq!(r.fct.count(Some(T1)), 21);
        assert_eq!(
            r.tenant(T1).delivered_bytes,
            5_000_000 + 20 * 20_000,
            "byte conservation under {scheduler:?}"
        );
    }
}

#[test]
fn elephant_throughput_unhurt_by_priority() {
    // SRPT hurts the elephant's FCT only mildly when mice are 8% of bytes.
    let pifo = run(SchedulerKind::Pifo);
    let fifo = run(SchedulerKind::Fifo);
    let big_p = pifo.fct.mean_fct_ms(Some(T1), SizeBucket::LARGE).unwrap();
    let big_f = fifo.fct.mean_fct_ms(Some(T1), SizeBucket::LARGE).unwrap();
    assert!(
        big_p < big_f * 1.5,
        "elephant under PIFO ({big_p:.1} ms) should not collapse vs FIFO ({big_f:.1} ms)"
    );
}
