//! The Configuration API (Fig. 1).
//!
//! The paper's architecture exposes a configuration surface through which
//! tenants submit their specifications and the operator submits the
//! composition policy. This module is that surface as data: a serializable
//! [`DeploymentConfig`] that can be checked in next to a switch's config,
//! validated, and turned into a synthesized deployment in one call.
//!
//! ```
//! use qvisor_core::config_api::DeploymentConfig;
//!
//! let json = r#"{
//!     "tenants": [
//!         { "id": 1, "name": "T1", "algorithm": "pFabric",
//!           "rank_min": 0, "rank_max": 100000, "levels": 512 },
//!         { "id": 2, "name": "T2", "algorithm": "EDF",
//!           "rank_min": 0, "rank_max": 10000 }
//!     ],
//!     "policy": "T1 >> T2"
//! }"#;
//! let config = DeploymentConfig::from_json(json).unwrap();
//! let joint = config.synthesize().unwrap();
//! assert!(qvisor_core::analyze(&joint).all_guarantees_hold());
//! ```

use crate::error::{QvisorError, Result};
use crate::policy::Policy;
use crate::spec::{SynthConfig, TenantSpec};
use crate::synth::{synthesize, JointPolicy};
use qvisor_ranking::RankRange;
use qvisor_sim::json::{self, Value};
use qvisor_sim::TenantId;

/// One tenant's entry in the configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantConfig {
    /// Tenant identifier carried in packet labels.
    pub id: u16,
    /// Name used in the policy string.
    pub name: String,
    /// Human-readable algorithm name.
    pub algorithm: String,
    /// Smallest declared rank.
    pub rank_min: u64,
    /// Largest declared rank.
    pub rank_max: u64,
    /// Optional quantization override (omitted from JSON when `None`).
    pub levels: Option<u64>,
}

/// Synthesizer options, all defaulted (each may be omitted from JSON).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SynthOptions {
    /// Default quantization levels per tenant.
    pub default_levels: u64,
    /// First output rank of the joint policy.
    pub first_rank: u64,
    /// Preference bias divisor.
    pub pref_bias_divisor: u64,
}

impl Default for SynthOptions {
    fn default() -> SynthOptions {
        let c = SynthConfig::default();
        SynthOptions {
            default_levels: c.default_levels,
            first_rank: c.first_rank,
            pref_bias_divisor: c.pref_bias_divisor,
        }
    }
}

/// A complete QVISOR deployment description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeploymentConfig {
    /// Tenant entries.
    pub tenants: Vec<TenantConfig>,
    /// Operator policy string.
    pub policy: String,
    /// Synthesizer options (may be omitted from JSON entirely).
    pub synth: SynthOptions,
}

fn config_err(e: json::ParseError) -> QvisorError {
    QvisorError::Parse {
        at: e.at,
        msg: format!("configuration JSON: {}", e.msg),
    }
}

fn semantic(msg: impl Into<String>) -> json::ParseError {
    json::ParseError {
        at: 0,
        msg: msg.into(),
    }
}

fn tenant_from_value(v: &Value) -> std::result::Result<TenantConfig, json::ParseError> {
    let id = json::field_u64(v, "id")?;
    let id =
        u16::try_from(id).map_err(|_| semantic("field 'id' does not fit a tenant id (u16)"))?;
    let levels = match v.get("levels") {
        None => None,
        Some(l) if l.is_null() => None,
        Some(l) => Some(
            l.as_u64()
                .ok_or_else(|| semantic("field 'levels' must be a non-negative integer"))?,
        ),
    };
    Ok(TenantConfig {
        id,
        name: json::field_str(v, "name")?.to_string(),
        algorithm: json::field_str(v, "algorithm")?.to_string(),
        rank_min: json::field_u64(v, "rank_min")?,
        rank_max: json::field_u64(v, "rank_max")?,
        levels,
    })
}

fn synth_from_value(v: &Value) -> std::result::Result<SynthOptions, json::ParseError> {
    let defaults = SynthOptions::default();
    let opt = |key: &str, fallback: u64| match v.get(key) {
        None => Ok(fallback),
        Some(x) => x
            .as_u64()
            .ok_or_else(|| semantic(format!("field '{key}' must be a non-negative integer"))),
    };
    Ok(SynthOptions {
        default_levels: opt("default_levels", defaults.default_levels)?,
        first_rank: opt("first_rank", defaults.first_rank)?,
        pref_bias_divisor: opt("pref_bias_divisor", defaults.pref_bias_divisor)?,
    })
}

impl DeploymentConfig {
    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<DeploymentConfig> {
        let root = Value::parse(text).map_err(config_err)?;
        let tenants = json::field(&root, "tenants")
            .and_then(|t| {
                t.as_array()
                    .ok_or_else(|| semantic("field 'tenants' must be an array"))
            })
            .map_err(config_err)?
            .iter()
            .map(tenant_from_value)
            .collect::<std::result::Result<Vec<_>, _>>()
            .map_err(config_err)?;
        let policy = json::field_str(&root, "policy")
            .map_err(config_err)?
            .to_string();
        let synth = match root.get("synth") {
            None => SynthOptions::default(),
            Some(v) => synth_from_value(v).map_err(config_err)?,
        };
        Ok(DeploymentConfig {
            tenants,
            policy,
            synth,
        })
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        let tenants: Vec<Value> = self
            .tenants
            .iter()
            .map(|t| {
                let obj = Value::object()
                    .set("id", u64::from(t.id))
                    .set("name", t.name.as_str())
                    .set("algorithm", t.algorithm.as_str())
                    .set("rank_min", t.rank_min)
                    .set("rank_max", t.rank_max);
                match t.levels {
                    Some(levels) => obj.set("levels", levels),
                    None => obj,
                }
            })
            .collect();
        Value::object()
            .set("tenants", Value::from(tenants))
            .set("policy", self.policy.as_str())
            .set(
                "synth",
                Value::object()
                    .set("default_levels", self.synth.default_levels)
                    .set("first_rank", self.synth.first_rank)
                    .set("pref_bias_divisor", self.synth.pref_bias_divisor),
            )
            .to_pretty()
    }

    /// Validate and lower into specs, policy, and synth config.
    pub fn build(&self) -> Result<(Vec<TenantSpec>, Policy, SynthConfig)> {
        let mut specs = Vec::with_capacity(self.tenants.len());
        for t in &self.tenants {
            if t.rank_min > t.rank_max {
                return Err(QvisorError::Synthesis(format!(
                    "tenant '{}' declares an empty rank range [{}, {}]",
                    t.name, t.rank_min, t.rank_max
                )));
            }
            if t.levels == Some(0) {
                return Err(QvisorError::Synthesis(format!(
                    "tenant '{}' declares zero quantization levels",
                    t.name
                )));
            }
            let mut spec = TenantSpec::new(
                TenantId(t.id),
                t.name.clone(),
                t.algorithm.clone(),
                RankRange::new(t.rank_min, t.rank_max),
            );
            spec.levels = t.levels;
            specs.push(spec);
        }
        let policy = Policy::parse(&self.policy)?;
        let synth = SynthConfig {
            default_levels: self.synth.default_levels,
            first_rank: self.synth.first_rank,
            pref_bias_divisor: self.synth.pref_bias_divisor,
        };
        Ok((specs, policy, synth))
    }

    /// One-shot: validate and synthesize the joint policy.
    pub fn synthesize(&self) -> Result<JointPolicy> {
        let (specs, policy, synth) = self.build()?;
        synthesize(&specs, &policy, synth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeploymentConfig {
        DeploymentConfig {
            tenants: vec![
                TenantConfig {
                    id: 1,
                    name: "T1".into(),
                    algorithm: "pFabric".into(),
                    rank_min: 0,
                    rank_max: 100_000,
                    levels: Some(512),
                },
                TenantConfig {
                    id: 2,
                    name: "T2".into(),
                    algorithm: "EDF".into(),
                    rank_min: 0,
                    rank_max: 10_000,
                    levels: None,
                },
            ],
            policy: "T1 >> T2".into(),
            synth: SynthOptions::default(),
        }
    }

    #[test]
    fn json_roundtrip() {
        let cfg = sample();
        let json = cfg.to_json();
        let back = DeploymentConfig::from_json(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn minimal_json_uses_defaults() {
        let json = r#"{
            "tenants": [
                {"id": 1, "name": "a", "algorithm": "x", "rank_min": 0, "rank_max": 9}
            ],
            "policy": "a"
        }"#;
        let cfg = DeploymentConfig::from_json(json).unwrap();
        assert_eq!(cfg.synth, SynthOptions::default());
        assert_eq!(cfg.tenants[0].levels, None);
        assert!(cfg.synthesize().is_ok());
    }

    #[test]
    fn synthesize_end_to_end() {
        let joint = sample().synthesize().unwrap();
        assert!(joint.chain(TenantId(1)).is_some());
        assert!(crate::analysis::analyze(&joint).all_guarantees_hold());
    }

    #[test]
    fn validation_catches_bad_entries() {
        let mut cfg = sample();
        cfg.tenants[0].rank_min = 5;
        cfg.tenants[0].rank_max = 1;
        assert!(matches!(cfg.build(), Err(QvisorError::Synthesis(_))));

        let mut cfg = sample();
        cfg.tenants[1].levels = Some(0);
        assert!(matches!(cfg.build(), Err(QvisorError::Synthesis(_))));

        let mut cfg = sample();
        cfg.policy = "T1 >> T9".into();
        assert!(matches!(
            cfg.synthesize(),
            Err(QvisorError::UnknownTenant(_))
        ));
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let err = DeploymentConfig::from_json("{oops").unwrap_err();
        assert!(matches!(err, QvisorError::Parse { .. }));
        assert!(err.to_string().contains("configuration JSON"));
    }
}
