//! AIFO: PIFO approximation with a single FIFO queue and rank-aware
//! admission control (Yu et al., SIGCOMM '21).
//!
//! AIFO never reorders packets; it *selectively admits* them. A sliding
//! window of recently-seen ranks estimates the rank distribution; a packet
//! is admitted only if its rank's quantile position is below the fraction of
//! the buffer still free (scaled by a burst-tolerance parameter). Under
//! congestion, low-rank packets keep getting in while high-rank packets are
//! dropped at the door — approximating PIFO's priority-drop with one queue.

use crate::queue::{Capacity, Enqueue, PacketQueue};
use qvisor_sim::{Nanos, Packet, Rank};
use std::collections::VecDeque;

/// Single-FIFO PIFO approximation with quantile-based admission.
#[derive(Debug)]
pub struct AifoQueue {
    queue: VecDeque<Packet>,
    capacity: Capacity,
    bytes: u64,
    /// Sliding window of the ranks of recent arrivals (admitted or not).
    window: VecDeque<Rank>,
    window_size: usize,
    /// Burst tolerance `k` in `[0, 1)`: higher admits more aggressively.
    burst: f64,
}

impl AifoQueue {
    /// An AIFO queue.
    ///
    /// * `window_size` — number of recent ranks used to estimate the
    ///   distribution (the paper uses small windows, e.g. 16–128).
    /// * `burst` — burst-tolerance parameter `k` in `[0, 1)`; the admission
    ///   threshold is `(1 - c) / (1 - k)` for queue occupancy fraction `c`.
    ///
    /// # Panics
    /// Panics if `window_size` is zero, `burst` is outside `[0, 1)`, or the
    /// capacity is unbounded (occupancy fraction would be meaningless).
    pub fn new(capacity: Capacity, window_size: usize, burst: f64) -> AifoQueue {
        assert!(window_size > 0, "window must hold at least one rank");
        assert!((0.0..1.0).contains(&burst), "burst must be in [0, 1)");
        assert!(
            capacity.bytes < u64::MAX,
            "AIFO needs a finite capacity to compute occupancy"
        );
        AifoQueue {
            queue: VecDeque::new(),
            capacity,
            bytes: 0,
            window: VecDeque::with_capacity(window_size),
            window_size,
            burst,
        }
    }

    fn observe(&mut self, rank: Rank) {
        if self.window.len() == self.window_size {
            self.window.pop_front();
        }
        self.window.push_back(rank);
    }

    /// Fraction of the window strictly below `rank` (the rank's estimated
    /// quantile position).
    fn quantile_position(&self, rank: Rank) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let below = self.window.iter().filter(|&&r| r < rank).count();
        below as f64 / self.window.len() as f64
    }

    /// Would a packet with `rank` be admitted right now?
    pub fn admits(&self, rank: Rank) -> bool {
        let c = self.bytes as f64 / self.capacity.bytes as f64;
        let threshold = (1.0 - c) / (1.0 - self.burst);
        self.quantile_position(rank) <= threshold
    }
}

impl PacketQueue for AifoQueue {
    fn enqueue(&mut self, p: Packet, _now: Nanos) -> Enqueue {
        let admit = self.admits(p.txf_rank) && self.capacity.fits(self.bytes, p.size as u64);
        self.observe(p.txf_rank);
        if !admit {
            return Enqueue::Rejected(Box::new(p));
        }
        self.bytes += p.size as u64;
        self.queue.push_back(p);
        Enqueue::Accepted
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        let p = self.queue.pop_front()?;
        self.bytes -= p.size as u64;
        Some(p)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn head_rank(&self) -> Option<Rank> {
        self.queue.front().map(|p| p.txf_rank)
    }

    fn kind(&self) -> &'static str {
        "aifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvisor_sim::{FlowId, NodeId, TenantId};

    fn pkt(seq: u64, rank: Rank) -> Packet {
        let mut p = Packet::data(
            FlowId(1),
            TenantId(0),
            seq,
            100,
            NodeId(0),
            NodeId(1),
            rank,
            Nanos::ZERO,
        );
        p.txf_rank = rank;
        p
    }

    #[test]
    fn empty_queue_admits_anything() {
        let mut q = AifoQueue::new(Capacity::bytes(1000), 8, 0.1);
        assert!(q.enqueue(pkt(0, 999), Nanos::ZERO).accepted());
    }

    #[test]
    fn congested_queue_rejects_high_ranks_admits_low() {
        let mut q = AifoQueue::new(Capacity::bytes(1000), 16, 0.0);
        // Fill to 80% with mid-rank packets.
        for i in 0..8 {
            assert!(q.enqueue(pkt(i, 50), Nanos::ZERO).accepted());
        }
        // Occupancy c=0.8 -> threshold 0.2. A rank above the whole window
        // (quantile 1.0) must be rejected; a rank below it (quantile 0.0)
        // admitted.
        assert!(!q.enqueue(pkt(100, 99), Nanos::ZERO).accepted());
        assert!(q.enqueue(pkt(101, 1), Nanos::ZERO).accepted());
    }

    #[test]
    fn never_reorders() {
        let mut q = AifoQueue::new(Capacity::bytes(10_000), 8, 0.1);
        for (i, r) in [9u64, 1, 5, 3].into_iter().enumerate() {
            q.enqueue(pkt(i as u64, r), Nanos::ZERO);
        }
        let out: Vec<u64> = std::iter::from_fn(|| q.dequeue(Nanos::ZERO))
            .map(|p| p.seq)
            .collect();
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn window_slides() {
        let mut q = AifoQueue::new(Capacity::bytes(100_000), 4, 0.0);
        // Old high ranks scroll out of the window.
        for i in 0..4 {
            q.enqueue(pkt(i, 1000), Nanos::ZERO);
        }
        for i in 4..8 {
            q.enqueue(pkt(i, 10), Nanos::ZERO);
        }
        // Window is now all 10s; rank 500 sits above the entire window.
        assert_eq!(q.quantile_position(500), 1.0);
        assert_eq!(q.quantile_position(10), 0.0);
    }

    #[test]
    fn full_buffer_rejects_regardless_of_rank() {
        let mut q = AifoQueue::new(Capacity::bytes(200), 4, 0.0);
        q.enqueue(pkt(0, 5), Nanos::ZERO);
        q.enqueue(pkt(1, 5), Nanos::ZERO);
        assert!(!q.enqueue(pkt(2, 0), Nanos::ZERO).accepted());
    }

    #[test]
    #[should_panic(expected = "finite capacity")]
    fn unbounded_capacity_rejected() {
        let _ = AifoQueue::new(Capacity::UNBOUNDED, 4, 0.0);
    }
}
